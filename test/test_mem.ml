(* Tests for db_mem: AGU access patterns, the DRAM model, buffers, Method-1
   tiling and the network layout. *)

module Access_pattern = Db_mem.Access_pattern
module Dram = Db_mem.Dram
module Buffer_model = Db_mem.Buffer_model
module Tiling = Db_mem.Tiling
module Layout = Db_mem.Layout

let test_pattern_contiguous () =
  let p = Access_pattern.contiguous ~name:"c" ~start:10 ~length:5 in
  Alcotest.(check (list int)) "addresses" [ 10; 11; 12; 13; 14 ]
    (Access_pattern.addresses_list p);
  Alcotest.(check (float 1e-9)) "fully sequential" 1.0
    (Access_pattern.sequential_fraction p)

let test_pattern_rows () =
  let p = Access_pattern.rows ~name:"r" ~start:0 ~x_length:3 ~y_length:2 ~stride:10 in
  Alcotest.(check (list int)) "addresses" [ 0; 1; 2; 10; 11; 12 ]
    (Access_pattern.addresses_list p);
  Alcotest.(check int) "word count" 6 (Access_pattern.word_count p)

let test_pattern_blocks () =
  let p =
    {
      Access_pattern.pattern_name = "b";
      start = 0;
      footprint = 100;
      x_length = 2;
      y_length = 2;
      stride = 4;
      offset = 20;
      repeat = 2;
    }
  in
  Alcotest.(check (list int)) "two displaced blocks"
    [ 0; 1; 4; 5; 20; 21; 24; 25 ]
    (Access_pattern.addresses_list p)

(* Property: the closed-form address stream equals the naive nested loop. *)
let prop_pattern_matches_nested_loops =
  QCheck.Test.make ~name:"AGU stream = naive nested loops" ~count:100
    QCheck.(
      quad (int_range 1 6) (int_range 1 5) (int_range 0 12) (int_range 1 3))
    (fun (x_length, y_length, extra_stride, repeat) ->
      let stride = x_length + extra_stride in
      let block_span = ((y_length - 1) * stride) + x_length in
      let p =
        {
          Access_pattern.pattern_name = "prop";
          start = 3;
          footprint = (repeat * block_span) + (repeat * block_span) + 8;
          x_length;
          y_length;
          stride;
          offset = block_span;
          repeat;
        }
      in
      let naive = ref [] in
      for b = 0 to repeat - 1 do
        for y = 0 to y_length - 1 do
          for x = 0 to x_length - 1 do
            naive := (3 + (b * block_span) + (y * stride) + x) :: !naive
          done
        done
      done;
      Access_pattern.addresses_list p = List.rev !naive)

let test_pattern_validation () =
  let bad =
    {
      Access_pattern.pattern_name = "escape";
      start = 0;
      footprint = 4;
      x_length = 10;
      y_length = 1;
      stride = 0;
      offset = 0;
      repeat = 1;
    }
  in
  match Access_pattern.validate bad with
  | () -> Alcotest.fail "expected footprint escape"
  | exception Db_util.Error.Deepburning_error _ -> ()

let test_pattern_fsm () =
  let p = Access_pattern.rows ~name:"f" ~start:0 ~x_length:4 ~y_length:3 ~stride:8 in
  let fsm = Access_pattern.to_fsm p in
  Db_hdl.Fsm.validate fsm;
  Alcotest.(check bool) "has burst state" true (List.mem "burst_row" fsm.Db_hdl.Fsm.states);
  Alcotest.(check bool) "has next_row" true (List.mem "next_row" fsm.Db_hdl.Fsm.states);
  (* trigger -> burst -> ... -> done *)
  let state, actions = Db_hdl.Fsm.step fsm ~state:"idle" ~asserted:[ "trigger" ] in
  Alcotest.(check string) "starts bursting" "burst_row" state;
  Alcotest.(check (list string)) "asserts addr_valid" [ "addr_valid" ] actions

let test_pattern_fsm_single_row () =
  let p = Access_pattern.contiguous ~name:"s" ~start:0 ~length:8 in
  let fsm = Access_pattern.to_fsm p in
  let state, actions = Db_hdl.Fsm.step fsm ~state:"burst_row" ~asserted:[ "row_done" ] in
  Alcotest.(check string) "returns to idle" "idle" state;
  Alcotest.(check (list string)) "done pulse" [ "done_pulse" ] actions

let test_dram_sequential_faster () =
  let d = Dram.zynq_ddr3 in
  let seq = Dram.transfer_cycles d ~bytes:65536 ~sequential_fraction:1.0 in
  let rnd = Dram.transfer_cycles d ~bytes:65536 ~sequential_fraction:0.0 in
  Alcotest.(check bool) "random much slower" true (rnd > 3 * seq);
  Alcotest.(check int) "zero bytes free" 0 (Dram.transfer_cycles d ~bytes:0 ~sequential_fraction:1.0)

let test_dram_latency_floor () =
  let d = Dram.zynq_ddr3 in
  Alcotest.(check bool) "one byte pays latency" true
    (Dram.transfer_cycles d ~bytes:1 ~sequential_fraction:1.0 > d.Dram.base_latency_cycles)

let test_dram_pattern_cycles () =
  let d = Dram.zynq_ddr3 in
  let p = Access_pattern.contiguous ~name:"x" ~start:0 ~length:1000 in
  let cycles = Dram.pattern_cycles d ~bytes_per_word:2 p in
  Alcotest.(check int) "matches transfer"
    (Dram.transfer_cycles d ~bytes:2000 ~sequential_fraction:1.0)
    cycles

let test_buffer_model () =
  let b = Buffer_model.make ~name:"f" ~capacity_words:1024 ~read_words_per_cycle:4 () in
  Alcotest.(check int) "read cycles" 25 (Buffer_model.read_cycles b ~words:100);
  Alcotest.(check int) "write width defaults" 25 (Buffer_model.write_cycles b ~words:100);
  Alcotest.(check bool) "holds" true (Buffer_model.holds b ~words:1024);
  Alcotest.(check bool) "does not hold" false (Buffer_model.holds b ~words:1025);
  Alcotest.(check int) "bram bits" (1024 * 16) (Buffer_model.bram_bits b ~bytes_per_word:2)

let test_method1_case1 () =
  (* k = d: kernel tiles. *)
  let plan = Tiling.decide { Tiling.kernel = 4; stride = 1; port_width = 4; map_count = 2 } in
  Alcotest.(check bool) "case 1" true (plan.Tiling.plan_case = Tiling.Kernel_tiles);
  Alcotest.(check int) "tile = k" 4 plan.Tiling.tile;
  Alcotest.(check bool) "maps not interleaved" false plan.Tiling.interleave_maps

let test_method1_case2 () =
  (* s divides k and d: stride tiles (the paper's 12x12 / stride 4 example
     with a 4-pixel port row). *)
  let plan = Tiling.decide { Tiling.kernel = 12; stride = 4; port_width = 4; map_count = 1 } in
  Alcotest.(check bool) "case 2" true (plan.Tiling.plan_case = Tiling.Stride_tiles);
  Alcotest.(check int) "tile = s" 4 plan.Tiling.tile

let test_method1_case3 () =
  let plan = Tiling.decide { Tiling.kernel = 5; stride = 2; port_width = 4; map_count = 3 } in
  Alcotest.(check bool) "case 3" true (plan.Tiling.plan_case = Tiling.Gcd_tiles);
  Alcotest.(check bool) "interleaved" true plan.Tiling.interleave_maps;
  Alcotest.(check int) "tile = gcd" 1 plan.Tiling.tile

(* Property: any plan's pixel order is a bijection over all pixels. *)
let prop_tiling_partition =
  QCheck.Test.make ~name:"Method-1 tiles partition the image" ~count:100
    QCheck.(
      quad (int_range 1 6) (int_range 1 4) (int_range 1 6) (int_range 1 3))
    (fun (kernel, stride, port_width, map_count) ->
      let plan = Tiling.decide { Tiling.kernel; stride; port_width; map_count } in
      let height = 7 and width = 9 in
      let order = Tiling.pixel_order plan ~height ~width in
      let seen = Hashtbl.create 97 in
      Array.iter (fun pix -> Hashtbl.replace seen pix ()) order;
      Array.length order = map_count * height * width
      && Hashtbl.length seen = Array.length order)

let prop_address_table_inverse =
  QCheck.Test.make ~name:"address table inverts pixel order" ~count:50
    QCheck.(pair (int_range 1 5) (int_range 1 3))
    (fun (kernel, map_count) ->
      let plan =
        Tiling.decide { Tiling.kernel; stride = 1; port_width = 4; map_count }
      in
      let height = 6 and width = 6 in
      let order = Tiling.pixel_order plan ~height ~width in
      let table = Tiling.address_table plan ~height ~width in
      let ok = ref true in
      Array.iteri
        (fun addr (m, y, x) ->
          if table.(((m * height) + y) * width + x) <> addr then ok := false)
        order;
      !ok)

let test_tiling_improves_window_locality () =
  (* The paper's example: 12x12 kernel at stride 4, port width 4. *)
  let spec = { Tiling.kernel = 12; stride = 4; port_width = 4; map_count = 1 } in
  let tiled = Tiling.decide spec and flat = Tiling.row_major spec in
  let height = 57 and width = 57 in
  let f_tiled = Tiling.window_sequential_fraction tiled ~height ~width in
  let f_flat = Tiling.window_sequential_fraction flat ~height ~width in
  Alcotest.(check bool)
    (Printf.sprintf "tiled %.3f > flat %.3f" f_tiled f_flat)
    true (f_tiled > f_flat)

let mnist_net () =
  Db_ir.Lower.lower
    (Db_workloads.Model_zoo.build Db_workloads.Model_zoo.mnist_prototxt)

let test_layout_covers_everything () =
  let net = mnist_net () in
  let layout = Layout.build ~port_width:4 net in
  (* Every blob and every weight tensor has an entry; regions are disjoint
     and contiguous from zero. *)
  let sorted =
    List.sort (fun a b -> compare a.Layout.base b.Layout.base) layout.Layout.entries
  in
  let next = ref 0 in
  List.iter
    (fun e ->
      Alcotest.(check int) ("contiguous at " ^ e.Layout.entry_name) !next e.Layout.base;
      next := !next + e.Layout.words)
    sorted;
  Alcotest.(check int) "total" layout.Layout.total_words !next

let test_layout_weight_entries () =
  let net = mnist_net () in
  let layout = Layout.build ~port_width:4 net in
  let conv1 = Layout.weight_entries layout ~node:"conv1" in
  Alcotest.(check int) "conv1 has weight+bias" 2 (List.length conv1);
  (match conv1 with
  | w :: _ -> Alcotest.(check int) "conv1 weights" (8 * 1 * 5 * 5) w.Layout.words
  | [] -> Alcotest.fail "no entries");
  let feature = Layout.feature_entry layout ~blob:"data" in
  Alcotest.(check int) "input words" 256 feature.Layout.words

let test_layout_conv_input_tiled () =
  let net = mnist_net () in
  let layout = Layout.build ~port_width:4 net in
  let entry = Layout.feature_entry layout ~blob:"data" in
  Alcotest.(check bool) "conv-consumed blob gets a plan" true
    (entry.Layout.tile_plan <> None);
  (* The FC input is not convolved: no plan. *)
  let pool2 = Layout.feature_entry layout ~blob:"pool2" in
  Alcotest.(check bool) "fc input untiled" true (pool2.Layout.tile_plan = None)

let suite =
  [
    ( "mem.access_pattern",
      [
        Alcotest.test_case "contiguous" `Quick test_pattern_contiguous;
        Alcotest.test_case "rows" `Quick test_pattern_rows;
        Alcotest.test_case "blocks" `Quick test_pattern_blocks;
        Alcotest.test_case "validation" `Quick test_pattern_validation;
        Alcotest.test_case "fsm" `Quick test_pattern_fsm;
        Alcotest.test_case "fsm single row" `Quick test_pattern_fsm_single_row;
        QCheck_alcotest.to_alcotest prop_pattern_matches_nested_loops;
      ] );
    ( "mem.dram",
      [
        Alcotest.test_case "sequential faster" `Quick test_dram_sequential_faster;
        Alcotest.test_case "latency floor" `Quick test_dram_latency_floor;
        Alcotest.test_case "pattern cycles" `Quick test_dram_pattern_cycles;
      ] );
    ( "mem.buffer", [ Alcotest.test_case "model" `Quick test_buffer_model ] );
    ( "mem.tiling",
      [
        Alcotest.test_case "Method-1 case 1" `Quick test_method1_case1;
        Alcotest.test_case "Method-1 case 2" `Quick test_method1_case2;
        Alcotest.test_case "Method-1 case 3" `Quick test_method1_case3;
        Alcotest.test_case "locality win" `Quick test_tiling_improves_window_locality;
        QCheck_alcotest.to_alcotest prop_tiling_partition;
        QCheck_alcotest.to_alcotest prop_address_table_inverse;
      ] );
    ( "mem.layout",
      [
        Alcotest.test_case "covers everything" `Quick test_layout_covers_everything;
        Alcotest.test_case "weight entries" `Quick test_layout_weight_entries;
        Alcotest.test_case "tile plans" `Quick test_layout_conv_input_tiled;
      ] );
  ]
