(* Crash-safety of the persistent design store: every way an entry can be
   damaged — truncation, bit rot, a stale format, a writer killed
   mid-write — must be recovered by silent recomputation, counted on the
   corrupt counter, and never surface as a wrong design.  Correctness is
   pinned the strong way: the RTL of a design served from disk is
   byte-identical to a fresh [Generator.generate]. *)

module Store = Db_store.Disk_store
module Cache = Db_core.Design_cache

let sha = Db_store.Sha256.hex

(* --- primitive vectors --------------------------------------------------- *)

let test_sha256_vectors () =
  Alcotest.(check string)
    "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (sha "");
  Alcotest.(check string)
    "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (sha "abc");
  Alcotest.(check string)
    "448-bit" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (sha "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_crc32_vector () =
  Alcotest.(check int) "check value" 0xCBF43926 (Db_fault.Ecc.crc32 "123456789")

(* --- fixtures ------------------------------------------------------------ *)

let net = lazy (Db_nn.Caffe.import_string Db_workloads.Model_zoo.mlp_prototxt)
let cons = Db_core.Constraints.db_medium

let tmp_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dbstore-test-%s-%d" name (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  dir

let generate () = Db_core.Generator.generate cons (Lazy.force net)

let key () = Cache.cache_key cons (Lazy.force net)

let rtl_sha design = sha (Db_core.Design.verilog design)

(* --- roundtrip ----------------------------------------------------------- *)

let test_roundtrip () =
  let t = Store.open_store ~dir:(tmp_dir "roundtrip") () in
  let design = generate () in
  let key = key () in
  Alcotest.(check bool) "initial miss" true (Store.lookup t ~key = None);
  Store.store t ~key design;
  (match Store.lookup t ~key with
  | None -> Alcotest.fail "stored entry not found"
  | Some restored ->
      Alcotest.(check string) "byte-identical RTL" (rtl_sha design)
        (rtl_sha restored));
  let s = Store.stats t in
  Alcotest.(check int) "one hit" 1 s.Store.st_hits;
  Alcotest.(check int) "one miss" 1 s.Store.st_misses;
  Alcotest.(check int) "no corruption" 0 s.Store.st_corrupt

(* Each corruption mode must land on the same path: counted, unlinked,
   then a miss (so the caller regenerates); never an exception, never a
   wrong design. *)
let corruption_recovers name mutate =
  let t = Store.open_store ~dir:(tmp_dir name) () in
  let design = generate () in
  let key = key () in
  Store.store t ~key design;
  let path = Store.entry_path t ~key in
  mutate path;
  (match Store.lookup t ~key with
  | None -> ()
  | Some restored ->
      (* Version skew aside, a surviving entry must still be correct. *)
      Alcotest.(check string) "still correct" (rtl_sha design) (rtl_sha restored));
  Alcotest.(check bool)
    (name ^ " counted corrupt") true
    ((Store.stats t).Store.st_corrupt >= 1);
  Alcotest.(check bool)
    (name ^ " entry dropped") false (Sys.file_exists path);
  (* The slot is reusable: store again, hit again. *)
  Store.store t ~key design;
  match Store.lookup t ~key with
  | None -> Alcotest.fail "store did not recover after corruption"
  | Some restored ->
      Alcotest.(check string) "recovered RTL" (rtl_sha design) (rtl_sha restored)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_bytes path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_truncated () =
  corruption_recovers "truncate" (fun path ->
      let content = read_bytes path in
      write_bytes path (String.sub content 0 (String.length content / 3)))

let test_bitflip () =
  corruption_recovers "bitflip" (fun path ->
      let content = Bytes.of_string (read_bytes path) in
      let i = Bytes.length content / 2 in
      Bytes.set content i (Char.chr (Char.code (Bytes.get content i) lxor 0x10));
      write_bytes path (Bytes.to_string content))

let test_bad_magic () =
  corruption_recovers "magic" (fun path ->
      let content = read_bytes path in
      write_bytes path ("XXSTORE9" ^ String.sub content 8 (String.length content - 8)))

let test_empty_entry () = corruption_recovers "empty" (fun path -> write_bytes path "")

(* An entry written by a different compiler (or salted test "compiler")
   must be treated as corrupt, not unmarshalled. *)
let test_version_skew () =
  let dir = tmp_dir "skew" in
  let old = Store.open_store ~dir ~version_salt:"+old" () in
  let design = generate () in
  let key = key () in
  Store.store old ~key design;
  let current = Store.open_store ~dir () in
  Alcotest.(check bool) "skewed entry is a miss" true
    (Store.lookup current ~key = None);
  Alcotest.(check bool) "counted corrupt" true
    ((Store.stats current).Store.st_corrupt >= 1);
  Alcotest.(check bool) "skewed entry dropped" false
    (Sys.file_exists (Store.entry_path current ~key))

(* A writer killed between tmp-write and rename leaves only a tmp file;
   reopening the store sweeps it and the entry simply does not exist. *)
let test_kill_mid_write_tmp_sweep () =
  let dir = tmp_dir "sweep" in
  let t = Store.open_store ~dir () in
  let design = generate () in
  let key = key () in
  Store.store t ~key design;
  let path = Store.entry_path t ~key in
  let shard = Filename.dirname path in
  (* Simulate the crash: the tmp file exists, the rename never happened. *)
  let tmp = Filename.concat shard ".deadwriter.12345.0.tmp" in
  write_bytes tmp (read_bytes path);
  Sys.remove path;
  let reopened = Store.open_store ~dir () in
  Alcotest.(check bool) "tmp swept" false (Sys.file_exists tmp);
  Alcotest.(check bool) "swept count" true
    ((Store.stats reopened).Store.st_swept_tmp >= 1);
  Alcotest.(check bool) "entry absent, not half-visible" true
    (Store.lookup reopened ~key = None)

(* --- size-bounded LRU compaction ----------------------------------------- *)

(* Eviction must be loss-free: the generator is deterministic, so an
   evicted design is recomputed bit-identically on its next request.  The
   sweep is LRU by mtime, and [lookup] bumps the mtime, so a hot entry
   survives a compaction that evicts colder ones. *)
let test_lru_compaction_recomputes () =
  let t = Store.open_store ~dir:(tmp_dir "lru") () in
  let design = generate () in
  let key = key () in
  let cold = key ^ "#cold" and warm = key ^ "#warm" in
  Store.store t ~key design;
  Store.store t ~key:cold design;
  Store.store t ~key:warm design;
  let entry_size k = (Unix.stat (Store.entry_path t ~key:k)).Unix.st_size in
  let total = entry_size key + entry_size cold + entry_size warm in
  (* Age everything, then touch the hot entry the way a request would:
     through [lookup]. *)
  Unix.utimes (Store.entry_path t ~key:cold) 1000.0 1000.0;
  Unix.utimes (Store.entry_path t ~key:warm) 2000.0 2000.0;
  Unix.utimes (Store.entry_path t ~key) 3000.0 3000.0;
  Alcotest.(check bool) "hot entry hit" true (Store.lookup t ~key <> None);
  (* One byte over budget: exactly the least-recently-used entry goes. *)
  let evicted = Store.compact ~max_bytes:(total - 1) t in
  Alcotest.(check int) "one eviction" 1 evicted;
  Alcotest.(check int) "eviction counted" 1 (Store.stats t).Store.st_evicted;
  Alcotest.(check bool) "coldest entry evicted" false
    (Sys.file_exists (Store.entry_path t ~key:cold));
  Alcotest.(check bool) "warm entry kept" true
    (Sys.file_exists (Store.entry_path t ~key:warm));
  Alcotest.(check bool) "hot entry kept by the lookup bump" true
    (Sys.file_exists (Store.entry_path t ~key));
  (* The evicted key is now a miss; recompute and re-store — the design
     coming back must be byte-identical to what was evicted. *)
  Alcotest.(check bool) "evicted key is a miss" true
    (Store.lookup t ~key:cold = None);
  Store.store t ~key:cold (generate ());
  (match Store.lookup t ~key:cold with
  | None -> Alcotest.fail "recomputed entry not found"
  | Some restored ->
      Alcotest.(check string) "recompute is byte-identical" (rtl_sha design)
        (rtl_sha restored));
  Alcotest.(check int) "nothing counted corrupt" 0 (Store.stats t).Store.st_corrupt

(* A store opened with [?max_bytes] compacts itself after every
   successful write-through: the newest entry always survives. *)
let test_auto_compaction_on_write () =
  let dir = tmp_dir "auto-lru" in
  let unbounded = Store.open_store ~dir () in
  let design = generate () in
  let key = key () in
  Store.store unbounded ~key design;
  let size = (Unix.stat (Store.entry_path unbounded ~key)).Unix.st_size in
  Unix.utimes (Store.entry_path unbounded ~key) 1000.0 1000.0;
  let bounded = Store.open_store ~dir ~max_bytes:(size + (size / 2)) () in
  Store.store bounded ~key:(key ^ "#new") design;
  Alcotest.(check bool) "write-through auto-compacted" true
    ((Store.stats bounded).Store.st_evicted >= 1);
  Alcotest.(check bool) "newest entry survives" true
    (Store.lookup bounded ~key:(key ^ "#new") <> None)

(* --- second-level wiring under Design_cache ------------------------------ *)

let with_attached dir f =
  let t = Store.open_store ~dir () in
  Store.attach t;
  Fun.protect ~finally:Store.detach (fun () -> f t)

let test_cache_write_through () =
  let dir = tmp_dir "write-through" in
  with_attached dir (fun t ->
      Cache.clear ();
      let design = Cache.generate cons (Lazy.force net) in
      let key = key () in
      Alcotest.(check bool) "written through" true
        (Sys.file_exists (Store.entry_path t ~key));
      (* Same process, L1 hit: the store is not consulted again. *)
      let again = Cache.generate cons (Lazy.force net) in
      Alcotest.(check string) "L1 serves the same design" (rtl_sha design)
        (rtl_sha again));
  (* "Restart": a fresh L1 with the same store serves the design from
     disk — zero L1 hits, one store hit, no regeneration. *)
  with_attached dir (fun t ->
      Cache.clear ();
      let design = Cache.generate cons (Lazy.force net) in
      let fresh = Db_core.Generator.generate cons (Lazy.force net) in
      Alcotest.(check string) "disk-served RTL is byte-identical"
        (rtl_sha fresh) (rtl_sha design);
      Alcotest.(check int) "served from the store" 1 (Store.stats t).Store.st_hits)

let test_cache_poisoned_entry_recomputes () =
  let dir = tmp_dir "poisoned" in
  with_attached dir (fun t ->
      Cache.clear ();
      let design = Cache.generate cons (Lazy.force net) in
      let key = key () in
      let path = Store.entry_path t ~key in
      (* Poison the persisted entry, then force the L1 to forget it. *)
      let content = Bytes.of_string (read_bytes path) in
      Bytes.set content (Bytes.length content - 1) '\x00';
      write_bytes path (Bytes.to_string content);
      Cache.clear ();
      let served = Cache.generate cons (Lazy.force net) in
      Alcotest.(check string) "silently recomputed, still correct"
        (rtl_sha design) (rtl_sha served);
      Alcotest.(check bool) "corruption counted" true
        ((Store.stats t).Store.st_corrupt >= 1))

(* A second level that throws must never fail generation. *)
let test_cache_absorbs_second_level_failure () =
  Cache.set_second_level
    (Some
       {
         Cache.sl_lookup = (fun _ -> failwith "broken lookup");
         sl_store = (fun _ _ -> failwith "broken store");
       });
  Fun.protect ~finally:Store.detach (fun () ->
      Cache.clear ();
      let design = Cache.generate cons (Lazy.force net) in
      Alcotest.(check bool) "generated despite broken second level" true
        (String.length (Db_core.Design.verilog design) > 0))

let suite =
  [
    ( "store",
      [
        Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
        Alcotest.test_case "crc32 vector" `Quick test_crc32_vector;
        Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        Alcotest.test_case "truncated entry recovers" `Quick test_truncated;
        Alcotest.test_case "bit flip recovers" `Quick test_bitflip;
        Alcotest.test_case "bad magic recovers" `Quick test_bad_magic;
        Alcotest.test_case "empty entry recovers" `Quick test_empty_entry;
        Alcotest.test_case "version skew regenerates" `Quick test_version_skew;
        Alcotest.test_case "kill mid-write sweeps tmp" `Quick
          test_kill_mid_write_tmp_sweep;
        Alcotest.test_case "LRU compaction recomputes losslessly" `Quick
          test_lru_compaction_recomputes;
        Alcotest.test_case "bounded store auto-compacts on write" `Quick
          test_auto_compaction_on_write;
        Alcotest.test_case "design cache writes through" `Quick
          test_cache_write_through;
        Alcotest.test_case "poisoned entry silently recomputes" `Quick
          test_cache_poisoned_entry_recomputes;
        Alcotest.test_case "broken second level absorbed" `Quick
          test_cache_absorbs_second_level_failure;
      ] );
  ]
