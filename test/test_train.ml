(* Tests for db_train: losses, gradient checking by finite differences, and
   end-to-end learning on small problems. *)

module Shape = Db_tensor.Shape
module Tensor = Db_tensor.Tensor
module Network = Db_nn.Network
module Layer = Db_nn.Layer
module Params = Db_nn.Params
module Trainer = Db_train.Trainer
module Loss = Db_train.Loss

let node name layer bottoms tops =
  { Network.node_name = name; layer; bottoms; tops }

let test_mse_loss () =
  let p = Tensor.of_array (Shape.vector 2) [| 1.0; 2.0 |] in
  let t = Tensor.of_array (Shape.vector 2) [| 0.0; 2.0 |] in
  Alcotest.(check (float 1e-9)) "mse" 0.25
    (Loss.forward Loss.Mean_squared_error ~prediction:p ~target:t)

let test_cross_entropy_perfect () =
  let p = Tensor.of_array (Shape.vector 3) [| 100.0; 0.0; 0.0 |] in
  let t = Loss.one_hot ~classes:3 0 in
  Alcotest.(check bool) "near zero" true
    (Loss.forward Loss.Softmax_cross_entropy ~prediction:p ~target:t < 1e-6)

let test_one_hot () =
  let t = Loss.one_hot ~classes:4 2 in
  Alcotest.(check bool) "one hot" true
    (Tensor.equal_approx t (Tensor.of_array (Shape.vector 4) [| 0.; 0.; 1.; 0. |]))

(* Finite-difference gradient check for a single layer. *)
let grad_check ~layer ~params ~input ~epsilon ~tol =
  let output, cache = Db_train.Backprop.forward_op ~op:(Db_ir.Op.of_layer layer) ~params ~input in
  (* Loss = sum of outputs; grad_output = ones. *)
  let grad_out = Tensor.full (Tensor.shape output) 1.0 in
  let grad_in, grad_params = Db_train.Backprop.backward_layer cache ~grad_output:grad_out in
  let loss_with modified_params modified_input =
    let out =
      Db_nn.Interpreter.eval_layer layer ~params:modified_params
        ~bottoms:[ modified_input ]
    in
    Tensor.fold ( +. ) 0.0 out
  in
  (* Check input gradient. *)
  (match grad_in with
  | None -> ()
  | Some gi ->
      for i = 0 to Stdlib.min 8 (Tensor.numel input) - 1 do
        let plus = Tensor.copy input and minus = Tensor.copy input in
        Tensor.set plus i (Tensor.get input i +. epsilon);
        Tensor.set minus i (Tensor.get input i -. epsilon);
        let numeric = (loss_with params plus -. loss_with params minus) /. (2.0 *. epsilon) in
        let analytic = Tensor.get gi i in
        if Float.abs (numeric -. analytic) > tol then
          Alcotest.failf "input grad %d: numeric %g vs analytic %g" i numeric analytic
      done);
  (* Check parameter gradients. *)
  List.iteri
    (fun pi gp ->
      let original = List.nth params pi in
      for i = 0 to Stdlib.min 8 (Tensor.numel original) - 1 do
        let plus = List.mapi (fun j t -> if j = pi then Tensor.copy t else t) params in
        let minus = List.mapi (fun j t -> if j = pi then Tensor.copy t else t) params in
        Tensor.set (List.nth plus pi) i (Tensor.get original i +. epsilon);
        Tensor.set (List.nth minus pi) i (Tensor.get original i -. epsilon);
        let numeric = (loss_with plus input -. loss_with minus input) /. (2.0 *. epsilon) in
        let analytic = Tensor.get gp i in
        if Float.abs (numeric -. analytic) > tol then
          Alcotest.failf "param %d grad %d: numeric %g vs analytic %g" pi i numeric analytic
      done)
    grad_params

let rng_tensor seed shape =
  Tensor.random_uniform (Db_util.Rng.create seed) shape ~min:(-0.5) ~max:0.5

let test_gradcheck_fc () =
  grad_check
    ~layer:(Layer.Inner_product { num_output = 3; bias = true })
    ~params:
      [ rng_tensor 1 (Shape.of_list [ 3; 4 ]); rng_tensor 2 (Shape.vector 3) ]
    ~input:(rng_tensor 3 (Shape.vector 4))
    ~epsilon:1e-4 ~tol:1e-3

let test_gradcheck_conv () =
  grad_check
    ~layer:
      (Layer.Convolution
         { num_output = 2; kernel_size = 3; stride = 1; pad = 1; group = 1; bias = true })
    ~params:
      [ rng_tensor 4 (Shape.of_list [ 2; 2; 3; 3 ]); rng_tensor 5 (Shape.vector 2) ]
    ~input:(rng_tensor 6 (Shape.chw ~channels:2 ~height:4 ~width:4))
    ~epsilon:1e-4 ~tol:1e-3

let test_gradcheck_conv_stride_group () =
  grad_check
    ~layer:
      (Layer.Convolution
         { num_output = 4; kernel_size = 2; stride = 2; pad = 0; group = 2; bias = false })
    ~params:[ rng_tensor 7 (Shape.of_list [ 4; 1; 2; 2 ]) ]
    ~input:(rng_tensor 8 (Shape.chw ~channels:2 ~height:4 ~width:4))
    ~epsilon:1e-4 ~tol:1e-3

let test_gradcheck_avg_pool () =
  grad_check
    ~layer:(Layer.Pooling { method_ = Layer.Average; kernel_size = 2; stride = 2 })
    ~params:[]
    ~input:(rng_tensor 9 (Shape.chw ~channels:1 ~height:4 ~width:4))
    ~epsilon:1e-4 ~tol:1e-3

let test_gradcheck_max_pool () =
  grad_check
    ~layer:(Layer.Pooling { method_ = Layer.Max; kernel_size = 2; stride = 2 })
    ~params:[]
    ~input:(rng_tensor 10 (Shape.chw ~channels:1 ~height:4 ~width:4))
    ~epsilon:1e-5 ~tol:1e-2

let test_gradcheck_activations () =
  List.iter
    (fun act ->
      grad_check ~layer:(Layer.Activation act) ~params:[]
        ~input:(rng_tensor 11 (Shape.vector 6))
        ~epsilon:1e-5 ~tol:1e-3)
    [ Layer.Relu; Layer.Sigmoid; Layer.Tanh ]

let test_gradcheck_softmax () =
  grad_check ~layer:Layer.Softmax ~params:[]
    ~input:(rng_tensor 12 (Shape.vector 5))
    ~epsilon:1e-5 ~tol:1e-3

let test_gradcheck_global_pool () =
  grad_check ~layer:(Layer.Global_pooling Layer.Average) ~params:[]
    ~input:(rng_tensor 13 (Shape.chw ~channels:2 ~height:3 ~width:3))
    ~epsilon:1e-4 ~tol:1e-3

let xor_network () =
  Network.create ~name:"xor"
    [
      node "in" (Layer.Input { shape = Shape.vector 2 }) [] [ "x" ];
      node "fc1" (Layer.Inner_product { num_output = 4; bias = true }) [ "x" ] [ "h" ];
      node "t" (Layer.Activation Layer.Tanh) [ "h" ] [ "ht" ];
      node "fc2" (Layer.Inner_product { num_output = 1; bias = true }) [ "ht" ] [ "y" ];
    ]

let test_training_learns_xor () =
  let net = xor_network () in
  let rng = Db_util.Rng.create 123 in
  let params = Params.init_xavier rng net in
  let sample a b =
    {
      Trainer.input = Tensor.of_array (Shape.vector 2) [| a; b |];
      target =
        Tensor.of_array (Shape.vector 1)
          [| (if (a > 0.5) <> (b > 0.5) then 1.0 else 0.0) |];
    }
  in
  let base = [| sample 0. 0.; sample 0. 1.; sample 1. 0.; sample 1. 1. |] in
  let data = Array.init 64 (fun i -> base.(i mod 4)) in
  let history =
    Trainer.train
      ~config:
        {
          Trainer.default_config with
          Trainer.epochs = 200;
          learning_rate = 0.1;
          batch_size = 4;
        }
      ~rng net params data
  in
  if history.Trainer.final_loss > 0.02 then
    Alcotest.failf "xor did not converge: final loss %g" history.Trainer.final_loss

let test_training_loss_decreases () =
  let net = xor_network () in
  let rng = Db_util.Rng.create 7 in
  let params = Params.init_xavier rng net in
  let data =
    Array.init 32 (fun i ->
        let x = float_of_int (i mod 8) /. 8.0 in
        {
          Trainer.input = Tensor.of_array (Shape.vector 2) [| x; 1.0 -. x |];
          target = Tensor.of_array (Shape.vector 1) [| sin x |];
        })
  in
  let history =
    Trainer.train
      ~config:{ Trainer.default_config with Trainer.epochs = 30; learning_rate = 0.05 }
      ~rng net params data
  in
  let first = history.Trainer.losses.(0) and last = history.Trainer.final_loss in
  if last >= first then Alcotest.failf "loss did not decrease: %g -> %g" first last

let test_trainer_rejects_nonchain () =
  let net =
    Network.create ~name:"fork"
      [
        node "in" (Layer.Input { shape = Shape.chw ~channels:1 ~height:2 ~width:2 }) [] [ "x" ];
        node "a" (Layer.Convolution { num_output = 1; kernel_size = 1; stride = 1; pad = 0; group = 1; bias = false }) [ "x" ] [ "ya" ];
        node "b" (Layer.Convolution { num_output = 1; kernel_size = 1; stride = 1; pad = 0; group = 1; bias = false }) [ "x" ] [ "yb" ];
        node "c" Layer.Concat [ "ya"; "yb" ] [ "y" ];
      ]
  in
  let rng = Db_util.Rng.create 1 in
  let params = Params.init_xavier rng net in
  let data =
    [|
      {
        Trainer.input = Tensor.create (Shape.chw ~channels:1 ~height:2 ~width:2);
        target = Tensor.create (Shape.chw ~channels:2 ~height:2 ~width:2);
      };
    |]
  in
  match Trainer.train ~rng net params data with
  | (_ : Trainer.history) -> Alcotest.fail "expected non-chain rejection"
  | exception Db_util.Error.Deepburning_error _ -> ()

let test_classification_accuracy_api () =
  let net = xor_network () in
  (* With an untrained network accuracy is still a valid in-[0,1] number. *)
  let rng = Db_util.Rng.create 3 in
  let params = Params.init_xavier rng net in
  let samples =
    Array.init 10 (fun i ->
        (Tensor.of_array (Shape.vector 2) [| float_of_int i /. 10.0; 0.5 |], 0))
  in
  let acc = Trainer.classification_accuracy net params samples in
  Alcotest.(check bool) "in range" true (acc >= 0.0 && acc <= 1.0)

(* ------------------------------------------------------------------ *)
(* Whole-graph gradient checks: central finite differences through a
   multi-layer chain, against [Backprop] run over the trainer's own
   no-fusion lowering ([Trainer.chain_of_network]).  Each graph gets a
   few random seeds — the single-layer checks above pin the kernels,
   these pin the chain-rule composition across ops. *)

let graph_forward chain store input =
  List.fold_left
    (fun x (node : Db_ir.Graph.node) ->
      fst
        (Db_train.Backprop.forward_op ~op:node.Db_ir.Graph.op
           ~params:(Params.get store node.Db_ir.Graph.node_name)
           ~input:x))
    input chain

let graph_grad_check ~seed net ~epsilon ~tol =
  let rng = Db_util.Rng.create seed in
  let store = Params.init_xavier rng net in
  let chain = Trainer.chain_of_network net in
  let in_shape =
    match (List.hd (Network.input_nodes net)).Network.layer with
    | Layer.Input { shape } -> shape
    | _ -> Alcotest.fail "first node is not the input"
  in
  let input = Tensor.random_uniform rng in_shape ~min:(-0.5) ~max:0.5 in
  let probe = graph_forward chain store input in
  let target =
    Tensor.random_uniform rng (Tensor.shape probe) ~min:(-0.5) ~max:0.5
  in
  let loss_of store input =
    Loss.forward Loss.Mean_squared_error
      ~prediction:(graph_forward chain store input)
      ~target
  in
  (* Analytic gradients through the whole chain. *)
  let _, caches =
    List.fold_left
      (fun (x, acc) (node : Db_ir.Graph.node) ->
        let y, cache =
          Db_train.Backprop.forward_op ~op:node.Db_ir.Graph.op
            ~params:(Params.get store node.Db_ir.Graph.node_name)
            ~input:x
        in
        (y, (node, cache) :: acc))
      (input, []) chain
  in
  let prediction = graph_forward chain store input in
  let grad_out =
    Loss.backward Loss.Mean_squared_error ~prediction ~target
  in
  let grads = Hashtbl.create 8 in
  let grad_input = ref None in
  let rec backprop grad = function
    | [] -> grad_input := Some grad
    | (node, cache) :: rest -> begin
        let gi, gp = Db_train.Backprop.backward_layer cache ~grad_output:grad in
        if gp <> [] then Hashtbl.replace grads node.Db_ir.Graph.node_name gp;
        match gi with Some g -> backprop g rest | None -> ()
      end
  in
  backprop grad_out caches;
  let check what numeric analytic =
    if Float.abs (numeric -. analytic) > tol then
      Alcotest.failf "%s (seed %d): numeric %g vs analytic %g" what seed
        numeric analytic
  in
  (* A handful of input entries. *)
  (match !grad_input with
  | None -> ()
  | Some gi ->
      for i = 0 to Stdlib.min 5 (Tensor.numel input) - 1 do
        let plus = Tensor.copy input and minus = Tensor.copy input in
        Tensor.set plus i (Tensor.get input i +. epsilon);
        Tensor.set minus i (Tensor.get input i -. epsilon);
        check
          (Printf.sprintf "d loss/d input[%d]" i)
          ((loss_of store plus -. loss_of store minus) /. (2.0 *. epsilon))
          (Tensor.get gi i)
      done);
  (* A handful of entries of every parameter tensor of every layer. *)
  Hashtbl.iter
    (fun name gp ->
      List.iteri
        (fun pi g ->
          let original = List.nth (Params.get store name) pi in
          for i = 0 to Stdlib.min 5 (Tensor.numel original) - 1 do
            let perturbed delta =
              let store' = Params.copy store in
              let t = List.nth (Params.get store' name) pi in
              Tensor.set t i (Tensor.get t i +. delta);
              loss_of store' input
            in
            check
              (Printf.sprintf "d loss/d %s[%d][%d]" name pi i)
              ((perturbed epsilon -. perturbed (-.epsilon))
              /. (2.0 *. epsilon))
              (Tensor.get g i)
          done)
        gp)
    grads

let seeds = [ 17; 29; 83 ]

let test_graphcheck_mlp () =
  List.iter
    (fun seed ->
      graph_grad_check ~seed ~epsilon:1e-4 ~tol:1e-3
        (Network.create ~name:"g-mlp"
           [
             node "in" (Layer.Input { shape = Shape.vector 4 }) [] [ "x" ];
             node "fc1" (Layer.Inner_product { num_output = 5; bias = true }) [ "x" ] [ "h" ];
             node "s" (Layer.Activation Layer.Sigmoid) [ "h" ] [ "hs" ];
             node "fc2" (Layer.Inner_product { num_output = 3; bias = true }) [ "hs" ] [ "y" ];
           ]))
    seeds

let test_graphcheck_conv_pool () =
  List.iter
    (fun seed ->
      graph_grad_check ~seed ~epsilon:1e-4 ~tol:2e-3
        (Network.create ~name:"g-conv"
           [
             node "in"
               (Layer.Input { shape = Shape.chw ~channels:2 ~height:5 ~width:5 })
               [] [ "x" ];
             node "c1"
               (Layer.Convolution
                  { num_output = 3; kernel_size = 3; stride = 1; pad = 1; group = 1; bias = true })
               [ "x" ] [ "c" ];
             node "r" (Layer.Activation Layer.Relu) [ "c" ] [ "cr" ];
             node "p" (Layer.Pooling { method_ = Layer.Average; kernel_size = 2; stride = 2 })
               [ "cr" ] [ "cp" ];
             node "fc" (Layer.Inner_product { num_output = 4; bias = false }) [ "cp" ] [ "y" ];
           ]))
    seeds

let test_graphcheck_softmax_tail () =
  List.iter
    (fun seed ->
      graph_grad_check ~seed ~epsilon:1e-5 ~tol:1e-3
        (Network.create ~name:"g-softmax"
           [
             node "in" (Layer.Input { shape = Shape.vector 6 }) [] [ "x" ];
             node "fc" (Layer.Inner_product { num_output = 4; bias = true }) [ "x" ] [ "h" ];
             node "t" (Layer.Activation Layer.Tanh) [ "h" ] [ "ht" ];
             node "sm" Layer.Softmax [ "ht" ] [ "y" ];
           ]))
    seeds

let test_graphcheck_lrn_pool () =
  List.iter
    (fun seed ->
      graph_grad_check ~seed ~epsilon:1e-4 ~tol:2e-3
        (Network.create ~name:"g-lrn"
           [
             node "in"
               (Layer.Input { shape = Shape.chw ~channels:3 ~height:3 ~width:3 })
               [] [ "x" ];
             node "n"
               (Layer.Lrn { local_size = 3; alpha = 1e-2; beta = 0.75; k = 1.0 })
               [ "x" ] [ "xn" ];
             node "g" (Layer.Global_pooling Layer.Average) [ "xn" ] [ "xg" ];
             node "fc" (Layer.Inner_product { num_output = 2; bias = true }) [ "xg" ] [ "y" ];
           ]))
    seeds

let suite =
  [
    ( "train.loss",
      [
        Alcotest.test_case "mse" `Quick test_mse_loss;
        Alcotest.test_case "cross entropy" `Quick test_cross_entropy_perfect;
        Alcotest.test_case "one hot" `Quick test_one_hot;
      ] );
    ( "train.gradcheck",
      [
        Alcotest.test_case "fc" `Quick test_gradcheck_fc;
        Alcotest.test_case "conv" `Quick test_gradcheck_conv;
        Alcotest.test_case "conv stride+group" `Quick test_gradcheck_conv_stride_group;
        Alcotest.test_case "avg pool" `Quick test_gradcheck_avg_pool;
        Alcotest.test_case "max pool" `Quick test_gradcheck_max_pool;
        Alcotest.test_case "activations" `Quick test_gradcheck_activations;
        Alcotest.test_case "softmax" `Quick test_gradcheck_softmax;
        Alcotest.test_case "global pool" `Quick test_gradcheck_global_pool;
        Alcotest.test_case "graph: mlp" `Quick test_graphcheck_mlp;
        Alcotest.test_case "graph: conv+pool" `Quick test_graphcheck_conv_pool;
        Alcotest.test_case "graph: softmax tail" `Quick test_graphcheck_softmax_tail;
        Alcotest.test_case "graph: lrn+global pool" `Quick test_graphcheck_lrn_pool;
      ] );
    ( "train.sgd",
      [
        Alcotest.test_case "learns xor" `Slow test_training_learns_xor;
        Alcotest.test_case "loss decreases" `Quick test_training_loss_decreases;
        Alcotest.test_case "rejects non-chain" `Quick test_trainer_rejects_nonchain;
        Alcotest.test_case "accuracy api" `Quick test_classification_accuracy_api;
      ] );
  ]
