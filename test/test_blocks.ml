(* Tests for db_blocks: the Approx LUT and the component library's resource
   model, latency model and Verilog templates. *)

module Approx_lut = Db_blocks.Approx_lut
module Block = Db_blocks.Block
module Resource = Db_fpga.Resource

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let fmt = Db_fixed.Fixed.q16_8

let test_lut_exact_on_keys () =
  let lut = Approx_lut.build ~name:"sq" ~f:(fun x -> x *. x) ~lo:0.0 ~hi:4.0 ~entries:5 in
  (* Keys are 0,1,2,3,4; values exact there. *)
  List.iter
    (fun k -> Alcotest.(check (float 1e-12)) "key value" (k *. k) (Approx_lut.eval lut k))
    [ 0.0; 1.0; 2.0; 3.0; 4.0 ]

let test_lut_interpolates () =
  let lut = Approx_lut.build ~name:"lin" ~f:(fun x -> 2.0 *. x) ~lo:0.0 ~hi:1.0 ~entries:2 in
  (* A linear function is reproduced exactly by interpolation. *)
  Alcotest.(check (float 1e-12)) "midpoint" 1.0 (Approx_lut.eval lut 0.5);
  Alcotest.(check (float 1e-12)) "quarter" 0.5 (Approx_lut.eval lut 0.25)

let test_lut_clamps () =
  let lut = Approx_lut.sigmoid ~entries:64 in
  Alcotest.(check (float 1e-3)) "below range" (Approx_lut.eval lut (-8.0))
    (Approx_lut.eval lut (-100.0));
  Alcotest.(check (float 1e-3)) "above range" (Approx_lut.eval lut 8.0)
    (Approx_lut.eval lut 100.0)

let test_lut_error_shrinks_with_entries () =
  let f x = 1.0 /. (1.0 +. exp (-.x)) in
  let err n = Approx_lut.max_error (Approx_lut.sigmoid ~entries:n) ~f ~probes:2048 in
  let e16 = err 16 and e64 = err 64 and e256 = err 256 in
  Alcotest.(check bool) "16 > 64" true (e16 > e64);
  Alcotest.(check bool) "64 > 256" true (e64 > e256);
  Alcotest.(check bool) "256 entries are accurate" true (e256 < 2e-3)

let test_lut_mean_le_max () =
  let f = Float.tanh in
  let lut = Approx_lut.tanh_lut ~entries:32 in
  Alcotest.(check bool) "mean <= max" true
    (Approx_lut.mean_error lut ~f ~probes:1000 <= Approx_lut.max_error lut ~f ~probes:1000)

let test_lut_verilog_rom () =
  let lut = Approx_lut.sigmoid ~entries:16 in
  let m = Approx_lut.to_module lut ~fmt in
  let text = Db_hdl.Verilog.emit_module m in
  Alcotest.(check bool) "rom array" true (contains text "reg signed [15:0] rom [0:15];");
  Alcotest.(check bool) "interpolation" true (contains text "super-linear")

let test_block_validation () =
  Alcotest.check_raises "zero simd"
    (Db_util.Error.Deepburning_error "block: synergy neuron needs simd >= 1")
    (fun () -> ignore (Block.make ~name:"n" ~fmt (Block.Synergy_neuron { simd = 0 })));
  Alcotest.check_raises "bad ksorter"
    (Db_util.Error.Deepburning_error "block: k-sorter needs 0 < k <= fan_in")
    (fun () ->
      ignore (Block.make ~name:"k" ~fmt (Block.Classifier_ksorter { k = 5; fan_in = 3 })))

let test_neuron_resources_scale () =
  let r simd =
    Block.resource (Block.make ~name:"n" ~fmt (Block.Synergy_neuron { simd }))
  in
  Alcotest.(check int) "1 DSP per multiplier" 1 (r 1).Resource.dsps;
  Alcotest.(check int) "4 DSPs" 4 (r 4).Resource.dsps;
  Alcotest.(check bool) "luts grow" true ((r 4).Resource.luts > (r 1).Resource.luts)

let test_connection_box_quadratic () =
  let r p =
    Block.resource
      (Block.make ~name:"cb" ~fmt
         (Block.Connection_box { in_ports = p; out_ports = p; shift_latch = false }))
  in
  let r4 = (r 4).Resource.luts and r8 = (r 8).Resource.luts in
  (* Crossbar cost is quadratic in port count. *)
  Alcotest.(check bool) "4x growth" true (r8 >= 3 * r4)

let test_buffer_is_bram () =
  let r =
    Block.resource
      (Block.make ~name:"b" ~fmt (Block.Feature_buffer { words = 1024; port_words = 4 }))
  in
  Alcotest.(check int) "bram bits" (1024 * 16) r.Resource.bram_bits;
  Alcotest.(check int) "no DSPs" 0 r.Resource.dsps

let test_latency_model () =
  let l kind = Block.pipeline_latency (Block.make ~name:"x" ~fmt kind) in
  Alcotest.(check int) "simd-1 neuron" 2 (l (Block.Synergy_neuron { simd = 1 }));
  Alcotest.(check int) "simd-8 neuron has tree stages" 5 (l (Block.Synergy_neuron { simd = 8 }));
  Alcotest.(check bool) "ksorter depth grows" true
    (l (Block.Classifier_ksorter { k = 8; fan_in = 100 })
     > l (Block.Classifier_ksorter { k = 1; fan_in = 100 }))

let test_macs_per_cycle () =
  Alcotest.(check int) "neuron" 3
    (Block.macs_per_cycle (Block.make ~name:"n" ~fmt (Block.Synergy_neuron { simd = 3 })));
  Alcotest.(check int) "non-compute block" 0
    (Block.macs_per_cycle (Block.make ~name:"d" ~fmt Block.Dropout_unit))

let test_templates_emit () =
  let blocks =
    [
      Block.make ~name:"neuron" ~fmt (Block.Synergy_neuron { simd = 2 });
      Block.make ~name:"acc" ~fmt (Block.Accumulator { depth = 8; acc_bits = 24 });
      Block.make ~name:"poolmax" ~fmt (Block.Pooling_unit { window = 2; pool = Block.Max_pool });
      Block.make ~name:"poolavg" ~fmt (Block.Pooling_unit { window = 3; pool = Block.Avg_pool });
      Block.make ~name:"act" ~fmt
        (Block.Activation_unit { lut = Approx_lut.sigmoid ~entries:32 });
      Block.make ~name:"drop" ~fmt Block.Dropout_unit;
      Block.make ~name:"cb" ~fmt
        (Block.Connection_box { in_ports = 4; out_ports = 4; shift_latch = true });
      Block.make ~name:"sorter" ~fmt (Block.Classifier_ksorter { k = 2; fan_in = 10 });
      Block.make ~name:"agu" ~fmt
        (Block.Agu { agu_kind = Block.Main_agu; pattern_count = 4; addr_bits = 16 });
      Block.make ~name:"coord" ~fmt (Block.Coordinator { n_states = 5; n_signals = 4 });
      Block.make ~name:"fbuf" ~fmt (Block.Feature_buffer { words = 256; port_words = 4 });
    ]
  in
  List.iter
    (fun b ->
      let text = Db_hdl.Verilog.emit_module (Block.to_module b) in
      Alcotest.(check bool)
        (Block.kind_label b.Block.kind ^ " emits a module")
        true
        (contains text "module " && contains text "endmodule"))
    blocks

let test_shift_latch_port () =
  let with_latch =
    Block.to_module
      (Block.make ~name:"cb" ~fmt
         (Block.Connection_box { in_ports = 2; out_ports = 2; shift_latch = true }))
  in
  Alcotest.(check bool) "shifted port present" true
    (List.exists (fun (p : Db_hdl.Rtl.port) -> p.Db_hdl.Rtl.port_name = "shifted")
       with_latch.Db_hdl.Rtl.ports)

(* Property: interpolation error of any smooth monotone function halves
   (at least improves) as entries double. *)
let prop_lut_monotone_error =
  QCheck.Test.make ~name:"LUT error non-increasing in entries" ~count:20
    (QCheck.int_range 3 7)
    (fun log_n ->
      let n = 1 lsl log_n in
      let f x = exp x in
      let build n = Approx_lut.build ~name:"e" ~f ~lo:(-2.0) ~hi:2.0 ~entries:n in
      Approx_lut.max_error (build (2 * n)) ~f ~probes:512
      <= Approx_lut.max_error (build n) ~f ~probes:512 +. 1e-12)

let suite =
  [
    ( "blocks.approx_lut",
      [
        Alcotest.test_case "exact on keys" `Quick test_lut_exact_on_keys;
        Alcotest.test_case "interpolates" `Quick test_lut_interpolates;
        Alcotest.test_case "clamps" `Quick test_lut_clamps;
        Alcotest.test_case "error vs entries" `Quick test_lut_error_shrinks_with_entries;
        Alcotest.test_case "mean <= max" `Quick test_lut_mean_le_max;
        Alcotest.test_case "verilog rom" `Quick test_lut_verilog_rom;
        QCheck_alcotest.to_alcotest prop_lut_monotone_error;
      ] );
    ( "blocks.library",
      [
        Alcotest.test_case "validation" `Quick test_block_validation;
        Alcotest.test_case "neuron resources" `Quick test_neuron_resources_scale;
        Alcotest.test_case "crossbar quadratic" `Quick test_connection_box_quadratic;
        Alcotest.test_case "buffer bram" `Quick test_buffer_is_bram;
        Alcotest.test_case "latency" `Quick test_latency_model;
        Alcotest.test_case "macs per cycle" `Quick test_macs_per_cycle;
        Alcotest.test_case "templates emit" `Quick test_templates_emit;
        Alcotest.test_case "shift latch" `Quick test_shift_latch_port;
      ] );
  ]
