(* Tests for db_fault: ECC codecs, protection schemes, fault-space
   enumeration, campaign determinism across pool widths, and the
   cycle-budget watchdog the campaigns rely on. *)

module Error = Db_util.Error
module Rng = Db_util.Rng
module Pool = Db_parallel.Pool
module Tensor = Db_tensor.Tensor
module Shape = Db_tensor.Shape
module Constraints = Db_core.Constraints
module Generator = Db_core.Generator
module Design = Db_core.Design
module Ecc = Db_fault.Ecc
module Protect = Db_fault.Protect
module Site = Db_fault.Site
module Campaign = Db_fault.Campaign

(* ------------------------------------------------------------------ *)
(* ECC codecs                                                          *)

let test_secded_roundtrip_clean () =
  let rng = Rng.create 101 in
  List.iter
    (fun data_bits ->
      for _ = 1 to 200 do
        let w = Rng.int rng (1 lsl data_bits) in
        let code = Ecc.secded_encode ~data_bits w in
        let verdict, data = Ecc.secded_decode ~data_bits code in
        if verdict <> Ecc.Clean || data <> w then
          Alcotest.failf "clean roundtrip failed: %d bits, word %d" data_bits w
      done)
    [ 8; 16; 24; 32 ]

let test_secded_corrects_all_single_flips () =
  let rng = Rng.create 102 in
  List.iter
    (fun data_bits ->
      let total = Ecc.secded_total_bits ~data_bits in
      for _ = 1 to 50 do
        let w = Rng.int rng (1 lsl data_bits) in
        let code = Ecc.secded_encode ~data_bits w in
        for bit = 0 to total - 1 do
          let verdict, data = Ecc.secded_decode ~data_bits (code lxor (1 lsl bit)) in
          if verdict <> Ecc.Corrected || data <> w then
            Alcotest.failf "single flip at bit %d not corrected (%d bits)" bit
              data_bits
        done
      done)
    [ 8; 16; 32 ]

let test_secded_detects_all_double_flips () =
  let rng = Rng.create 103 in
  List.iter
    (fun data_bits ->
      let total = Ecc.secded_total_bits ~data_bits in
      for _ = 1 to 20 do
        let w = Rng.int rng (1 lsl data_bits) in
        let code = Ecc.secded_encode ~data_bits w in
        for b1 = 0 to total - 1 do
          for b2 = b1 + 1 to total - 1 do
            let corrupted = code lxor (1 lsl b1) lxor (1 lsl b2) in
            let verdict, _ = Ecc.secded_decode ~data_bits corrupted in
            if verdict <> Ecc.Double_error then
              Alcotest.failf "double flip (%d, %d) not detected (%d bits)" b1 b2
                data_bits
          done
        done
      done)
    [ 8; 16 ]

let test_parity_detects_odd_misses_even () =
  let rng = Rng.create 104 in
  let data_bits = 16 in
  for _ = 1 to 200 do
    let w = Rng.int rng (1 lsl data_bits) in
    let stored = Ecc.parity_encode ~data_bits w in
    Alcotest.(check bool) "clean passes" true (Ecc.parity_check ~data_bits stored);
    let b1 = Rng.int rng (data_bits + 1) in
    Alcotest.(check bool)
      "single flip detected" false
      (Ecc.parity_check ~data_bits (stored lxor (1 lsl b1)));
    let b2 = (b1 + 1 + Rng.int rng data_bits) mod (data_bits + 1) in
    Alcotest.(check bool)
      "double flip missed" true
      (Ecc.parity_check ~data_bits (stored lxor (1 lsl b1) lxor (1 lsl b2)))
  done

let test_crc8_catches_small_errors () =
  let rng = Rng.create 105 in
  let data_bits = 16 in
  for _ = 1 to 100 do
    let words = Array.init 8 (fun _ -> Rng.int rng (1 lsl data_bits)) in
    let crc = Ecc.crc8 ~data_bits words in
    let wi = Rng.int rng 8 and bi = Rng.int rng data_bits in
    let corrupted = Array.copy words in
    corrupted.(wi) <- corrupted.(wi) lxor (1 lsl bi);
    if Ecc.crc8 ~data_bits corrupted = crc then
      Alcotest.fail "single-bit error slipped past CRC-8"
  done

(* ------------------------------------------------------------------ *)
(* Protection schemes                                                  *)

let test_transmit_zero_fault_is_identity () =
  let rng = Rng.create 106 in
  List.iter
    (fun scheme ->
      for _ = 1 to 100 do
        let w = Rng.int rng (1 lsl 16) in
        match Protect.transmit scheme ~word_bits:16 ~word:w ~flips:[] with
        | Protect.Silent v ->
            Alcotest.(check int)
              (Protect.name scheme ^ " passes clean words") w v
        | _ -> Alcotest.fail "clean word flagged"
      done)
    Protect.all

let test_transmit_secded_corrects () =
  let rng = Rng.create 107 in
  let total = Ecc.secded_total_bits ~data_bits:16 in
  for _ = 1 to 200 do
    let w = Rng.int rng (1 lsl 16) in
    let bit = Rng.int rng total in
    match Protect.transmit Protect.Secded ~word_bits:16 ~word:w ~flips:[ bit ] with
    | Protect.Corrected -> ()
    | _ -> Alcotest.fail "SECDED failed to correct a single flip"
  done

let test_protection_overhead_nonzero () =
  List.iter
    (fun scheme ->
      let r = Protect.resource_overhead scheme ~word_bits:16 ~words:1024 in
      let nonzero =
        r.Db_fpga.Resource.luts > 0
        && r.Db_fpga.Resource.ffs > 0
        && r.Db_fpga.Resource.bram_bits > 0
      in
      Alcotest.(check bool) (Protect.name scheme ^ " costs hardware") true nonzero)
    [ Protect.Parity; Protect.Secded; Protect.Crc_reload ];
  Alcotest.(check bool) "unprotected is free" true
    (Protect.resource_overhead Protect.Unprotected ~word_bits:16 ~words:1024
    = Db_fpga.Resource.zero)

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)

let ann_net () =
  Db_workloads.Model_zoo.build
    (Db_workloads.Model_zoo.ann_prototxt ~name:"faultnet" ~inputs:8 ~hidden1:12
       ~hidden2:12 ~outputs:4)

let design_of net =
  Generator.generate (Constraints.with_dsp_cap Constraints.db_medium 4) net

let campaign_fixture () =
  let net = ann_net () in
  let design = design_of net in
  let rng = Rng.create 33 in
  let params = Db_nn.Params.init_xavier rng net in
  let inputs =
    Array.init 4 (fun _ ->
        Tensor.random_uniform rng (Shape.vector 8) ~min:(-1.0) ~max:1.0)
  in
  (design, params, inputs)

let small_config =
  {
    Campaign.default_config with
    Campaign.trials = 60;
    cycle_budget = 20_000;
    rates = [ 0.0; 1e-3 ];
  }

let counts_equal (a : Campaign.counts) (b : Campaign.counts) =
  a.Campaign.injections = b.Campaign.injections
  && a.Campaign.masked = b.Campaign.masked
  && a.Campaign.sdc = b.Campaign.sdc
  && a.Campaign.top1_flips = b.Campaign.top1_flips
  && a.Campaign.corrected = b.Campaign.corrected
  && a.Campaign.retried = b.Campaign.retried
  && a.Campaign.hangs = b.Campaign.hangs

let test_campaign_deterministic_across_pool_widths () =
  (* The test env pins DEEPBURNING_JOBS=4, so the plain run uses a real
     4-wide pool; with_sequential forces the jobs=1 path.  The rendered
     JSON has no timing fields, so it must match byte for byte. *)
  let design, params, inputs = campaign_fixture () in
  let run () =
    Campaign.run ~design ~params ~input_blob:"data" ~inputs small_config
  in
  let parallel = run () in
  let sequential = Pool.with_sequential run in
  Alcotest.(check bool)
    "classification counts identical" true
    (counts_equal parallel.Campaign.res_total sequential.Campaign.res_total);
  Alcotest.(check string)
    "JSON byte-identical"
    (Campaign.render_json parallel)
    (Campaign.render_json sequential)

let test_campaign_zero_rate_matches_baseline () =
  (* A zero fault rate injects nothing, so the degradation point must sit
     at exactly the fault-free accuracy: 100% agreement with golden. *)
  let design, params, inputs = campaign_fixture () in
  let r = Campaign.run ~design ~params ~input_blob:"data" ~inputs small_config in
  match r.Campaign.res_degradation with
  | (rate0, acc0) :: _ ->
      Alcotest.(check (float 0.0)) "rate 0" 0.0 rate0;
      Alcotest.(check (float 0.0)) "accuracy 100" 100.0 acc0
  | [] -> Alcotest.fail "no degradation points"

let test_campaign_ecc_removes_weight_sdc () =
  let design, params, inputs = campaign_fixture () in
  let config =
    {
      small_config with
      Campaign.trials = 120;
      targets = [ Site.Weights; Site.Biases ];
    }
  in
  let unprot =
    Campaign.run ~design ~params ~input_blob:"data" ~inputs config
  in
  let prot =
    Campaign.run ~design ~params ~input_blob:"data" ~inputs
      {
        config with
        Campaign.protection =
          {
            Campaign.unprotected with
            Campaign.weights = Protect.Secded;
            biases = Protect.Secded;
          };
      }
  in
  Alcotest.(check bool)
    "unprotected weights suffer silent corruption" true
    (Campaign.silent_fraction unprot.Campaign.res_total > 0.0);
  (* Every single-bit upset lands inside one SECDED codeword, so all of
     them come back corrected: zero silent corruption, nonzero cost. *)
  Alcotest.(check (float 0.0))
    "ECC removes it" 0.0
    (Campaign.silent_fraction prot.Campaign.res_total);
  Alcotest.(check bool)
    "corrections happened" true
    (prot.Campaign.res_total.Campaign.corrected > 0);
  Alcotest.(check bool)
    "overhead reported" true
    (prot.Campaign.res_overheads <> [])

let test_campaign_fsm_faults_hang () =
  let design, params, inputs = campaign_fixture () in
  let config =
    { small_config with Campaign.trials = 20; targets = [ Site.Control_fsm ] }
  in
  let r = Campaign.run ~design ~params ~input_blob:"data" ~inputs config in
  Alcotest.(check int)
    "every stuck-FSM trial hangs" r.Campaign.res_total.Campaign.injections
    r.Campaign.res_total.Campaign.hangs

(* ------------------------------------------------------------------ *)
(* Watchdog                                                            *)

let test_watchdog_stuck_agu_times_out () =
  let pattern =
    Db_mem.Access_pattern.rows ~name:"wd" ~start:0 ~x_length:8 ~y_length:4
      ~stride:8
  in
  (* Healthy machine finishes inside its budget... *)
  let agu = Db_mem.Agu_sim.create pattern in
  let addrs, cycles = Db_mem.Agu_sim.run_to_completion ~max_cycles:1_000 agu in
  Alcotest.(check int) "addresses" 32 (List.length addrs);
  Alcotest.(check bool) "cycles bounded" true (cycles <= 1_000);
  (* ...the same machine with a stuck state register trips the watchdog. *)
  let stuck = Db_mem.Agu_sim.create pattern in
  Db_mem.Agu_sim.inject_stuck_state stuck;
  match Db_mem.Agu_sim.run_to_completion ~max_cycles:500 stuck with
  | _ -> Alcotest.fail "stuck AGU terminated"
  | exception Error.Timeout { component; cycles; budget } ->
      Alcotest.(check string) "component" "agu-sim" component;
      Alcotest.(check int) "budget" 500 budget;
      Alcotest.(check bool) "spent the budget" true (cycles >= budget)

let test_watchdog_simulator_budget () =
  let design, params, inputs = campaign_fixture () in
  (* A generous budget passes and returns the same output as no budget. *)
  let free =
    Db_sim.Simulator.functional_output design params
      ~inputs:[ ("data", inputs.(0)) ]
  in
  let budgeted =
    Db_sim.Simulator.functional_output ~cycle_budget:10_000_000 design params
      ~inputs:[ ("data", inputs.(0)) ]
  in
  Alcotest.(check bool) "same output" true
    (Tensor.equal_approx ~tol:0.0 free budgeted);
  (* An impossible budget raises the structured timeout. *)
  match
    Db_sim.Simulator.functional_output ~cycle_budget:3 design params
      ~inputs:[ ("data", inputs.(0)) ]
  with
  | _ -> Alcotest.fail "watchdog did not fire"
  | exception Error.Timeout { component; budget; _ } ->
      Alcotest.(check string) "component" "simulator" component;
      Alcotest.(check int) "budget" 3 budget

(* ------------------------------------------------------------------ *)
(* Failure classes                                                     *)

let test_failure_classes_distinct_codes () =
  let classes =
    [
      Error.Parse; Error.Validation; Error.Resource; Error.Simulation;
      Error.Watchdog; Error.Io; Error.Internal;
    ]
  in
  let codes = List.map Error.exit_code classes in
  Alcotest.(check int)
    "codes all distinct"
    (List.length codes)
    (List.length (List.sort_uniq compare codes));
  List.iter
    (fun c ->
      let code = Error.exit_code c in
      Alcotest.(check bool) "outside cmdliner range" true
        (code >= 1 && code <= 8))
    classes

let test_classify_exn () =
  let check name exn expected =
    match Error.classify_exn exn with
    | Some cls -> Alcotest.(check string) name (Error.class_name expected) (Error.class_name cls)
    | None -> Alcotest.failf "%s: not classified" name
  in
  check "prototxt is parse" (Error.Deepburning_error "prototxt: bad") Error.Parse;
  check "network is validation"
    (Error.Deepburning_error "network: cycle")
    Error.Validation;
  check "fault is simulation" (Error.Deepburning_error "fault: x") Error.Simulation;
  check "timeout is watchdog"
    (Error.Timeout { component = "agu-sim"; cycles = 9; budget = 8 })
    Error.Watchdog;
  check "sys_error is io" (Sys_error "no such file") Error.Io;
  check "unknown prefix is internal"
    (Error.Deepburning_error "who-knows: x")
    Error.Internal;
  Alcotest.(check bool) "foreign exception unclassified" true
    (Error.classify_exn Exit = None)

let suite =
  [
    ( "fault.ecc",
      [
        Alcotest.test_case "secded clean roundtrip" `Quick
          test_secded_roundtrip_clean;
        Alcotest.test_case "secded corrects single flips" `Quick
          test_secded_corrects_all_single_flips;
        Alcotest.test_case "secded detects double flips" `Quick
          test_secded_detects_all_double_flips;
        Alcotest.test_case "parity parity" `Quick
          test_parity_detects_odd_misses_even;
        Alcotest.test_case "crc8 catches bit errors" `Quick
          test_crc8_catches_small_errors;
      ] );
    ( "fault.protect",
      [
        Alcotest.test_case "zero-fault identity" `Quick
          test_transmit_zero_fault_is_identity;
        Alcotest.test_case "secded transmit corrects" `Quick
          test_transmit_secded_corrects;
        Alcotest.test_case "overhead nonzero" `Quick
          test_protection_overhead_nonzero;
      ] );
    ( "fault.campaign",
      [
        Alcotest.test_case "deterministic across pool widths" `Quick
          test_campaign_deterministic_across_pool_widths;
        Alcotest.test_case "zero rate matches baseline" `Quick
          test_campaign_zero_rate_matches_baseline;
        Alcotest.test_case "ECC removes weight SDC" `Quick
          test_campaign_ecc_removes_weight_sdc;
        Alcotest.test_case "stuck FSM hangs" `Quick test_campaign_fsm_faults_hang;
      ] );
    ( "fault.watchdog",
      [
        Alcotest.test_case "stuck AGU times out" `Quick
          test_watchdog_stuck_agu_times_out;
        Alcotest.test_case "simulator cycle budget" `Quick
          test_watchdog_simulator_budget;
      ] );
    ( "fault.errors",
      [
        Alcotest.test_case "distinct exit codes" `Quick
          test_failure_classes_distinct_codes;
        Alcotest.test_case "classify_exn" `Quick test_classify_exn;
      ] );
  ]
