(* Alcotest entry point: all suites across the repository. *)

let () =
  Alcotest.run "deepburning"
    (Test_util.suite @ Test_parallel.suite @ Test_tensor.suite @ Test_fixed.suite
   @ Test_prototxt.suite @ Test_nn.suite @ Test_train.suite @ Test_hdl.suite
   @ Test_blocks.suite @ Test_fpga.suite @ Test_mem.suite @ Test_sched.suite
   @ Test_ir.suite @ Test_analysis.suite @ Test_core.suite @ Test_sim.suite
   @ Test_baseline.suite @ Test_workloads.suite @ Test_integration.suite
   @ Test_extensions.suite @ Test_fault.suite @ Test_obs.suite
   @ Test_fuzz.suite @ Test_check.suite @ Test_spec.suite @ Test_store.suite
   @ Test_serve.suite @ Test_dse.suite @ Test_trainhw.suite)
