(* Tests for db_fpga: resource vectors, device catalogue, power, timing. *)

module Resource = Db_fpga.Resource
module Device = Db_fpga.Device
module Power = Db_fpga.Power
module Timing = Db_fpga.Timing

let test_resource_arithmetic () =
  let a = Resource.make ~luts:100 ~ffs:50 ~dsps:2 ~bram_bits:1024 () in
  let b = Resource.make ~luts:10 ~dsps:1 () in
  let sum = Resource.add a b in
  Alcotest.(check int) "luts" 110 sum.Resource.luts;
  Alcotest.(check int) "dsps" 3 sum.Resource.dsps;
  Alcotest.(check int) "ffs carried" 50 sum.Resource.ffs;
  let doubled = Resource.scale 2 a in
  Alcotest.(check int) "scaled" 200 doubled.Resource.luts;
  Alcotest.(check int) "sum list" 110 (Resource.sum [ a; b ]).Resource.luts

let test_resource_fits () =
  let small = Resource.make ~luts:10 ~dsps:1 () in
  let big = Resource.make ~luts:100 ~dsps:10 ~ffs:5 ~bram_bits:8 () in
  Alcotest.(check bool) "fits" true (Resource.fits small ~within:big);
  Alcotest.(check bool) "does not fit" false (Resource.fits big ~within:small);
  let head = Resource.headroom small ~within:big in
  Alcotest.(check int) "headroom luts" 90 head.Resource.luts

let test_resource_utilisation () =
  let used = Resource.make ~luts:50 ~dsps:5 () in
  let cap = Resource.make ~luts:100 ~dsps:10 ~ffs:100 ~bram_bits:100 () in
  Alcotest.(check (float 1e-9)) "max ratio" 0.5 (Resource.utilisation used ~within:cap)

let test_resource_fraction () =
  let cap = Resource.make ~luts:1000 ~ffs:2000 ~dsps:100 ~bram_bits:4096 () in
  let quarter = Resource.fraction 0.25 cap in
  Alcotest.(check int) "luts" 250 quarter.Resource.luts;
  Alcotest.(check int) "dsps" 25 quarter.Resource.dsps;
  (* Tiny positive capacities never round to zero. *)
  let tiny = Resource.fraction 0.001 (Resource.make ~dsps:10 ()) in
  Alcotest.(check int) "at least one" 1 tiny.Resource.dsps

let test_device_catalogue () =
  Alcotest.(check int) "7045 DSPs" 900 Device.zynq_7045.Device.capacity.Resource.dsps;
  Alcotest.(check int) "7020 DSPs" 220 Device.zynq_7020.Device.capacity.Resource.dsps;
  Alcotest.(check bool) "7045 bigger than 7020" true
    (Resource.fits Device.zynq_7020.Device.capacity
       ~within:Device.zynq_7045.Device.capacity);
  let found = Device.find "zynq-7020" in
  Alcotest.(check string) "case-insensitive find" "Zynq-7020" found.Device.device_name

let test_power_monotone () =
  let small = Resource.make ~luts:100 ~dsps:1 () in
  let large = Resource.make ~luts:10000 ~dsps:100 () in
  let p r =
    (Power.accelerator_power ~device:Device.zynq_7045 ~used:r ~clock_mhz:100.0 ())
      .Power.total_w
  in
  Alcotest.(check bool) "more fabric, more power" true (p large > p small);
  Alcotest.(check bool) "static floor" true (p small >= Device.zynq_7045.Device.static_power_w)

let test_power_frequency_scales () =
  let used = Resource.make ~luts:1000 ~dsps:10 () in
  let d100 = Power.dynamic_of_resources used ~clock_mhz:100.0 in
  let d200 = Power.dynamic_of_resources used ~clock_mhz:200.0 in
  Alcotest.(check (float 1e-9)) "linear in frequency" (2.0 *. d100) d200

let test_energy () =
  let p = { Power.static_w = 1.0; dynamic_w = 1.0; total_w = 2.0 } in
  Alcotest.(check (float 1e-12)) "E = P t" 1.0 (Power.energy_j p ~seconds:0.5)

let test_timing () =
  let t = Timing.default in
  Alcotest.(check (float 1e-15)) "cycle" 1e-8 (Timing.cycle_seconds t);
  Alcotest.(check (float 1e-9)) "1000 cycles" 1e-5 (Timing.cycles_to_seconds t 1000);
  Alcotest.(check (float 1e-9)) "ms" 0.01 (Timing.cycles_to_ms t 1000);
  Alcotest.(check int) "inverse" 1000 (Timing.seconds_to_cycles t 1e-5);
  Alcotest.check_raises "bad frequency"
    (Db_util.Error.Deepburning_error "timing: at_mhz: non-positive frequency")
    (fun () ->
      ignore (Timing.at_mhz 0.0))

let prop_fits_antisymmetric =
  QCheck.Test.make ~name:"fits is reflexive" ~count:50
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (a, b, c, d) ->
      let r = Resource.make ~luts:a ~ffs:b ~dsps:c ~bram_bits:d () in
      Resource.fits r ~within:r)

let prop_add_monotone =
  QCheck.Test.make ~name:"adding never helps fitting" ~count:50
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let r = Resource.make ~luts:a () and extra = Resource.make ~luts:(b + 1) () in
      not (Resource.fits (Resource.add r extra) ~within:r))

let suite =
  [
    ( "fpga.resource",
      [
        Alcotest.test_case "arithmetic" `Quick test_resource_arithmetic;
        Alcotest.test_case "fits/headroom" `Quick test_resource_fits;
        Alcotest.test_case "utilisation" `Quick test_resource_utilisation;
        Alcotest.test_case "fraction" `Quick test_resource_fraction;
        QCheck_alcotest.to_alcotest prop_fits_antisymmetric;
        QCheck_alcotest.to_alcotest prop_add_monotone;
      ] );
    ( "fpga.device",
      [ Alcotest.test_case "catalogue" `Quick test_device_catalogue ] );
    ( "fpga.power",
      [
        Alcotest.test_case "monotone" `Quick test_power_monotone;
        Alcotest.test_case "frequency" `Quick test_power_frequency_scales;
        Alcotest.test_case "energy" `Quick test_energy;
      ] );
    ( "fpga.timing", [ Alcotest.test_case "conversions" `Quick test_timing ] );
  ]
