(* Tests for db_tensor: shapes, tensor algebra and the NN kernels, including
   qcheck properties on algebraic identities. *)

module Shape = Db_tensor.Shape
module Tensor = Db_tensor.Tensor
module Ops = Db_tensor.Ops

let check_float = Alcotest.(check (float 1e-9))

let tensor_eq msg a b =
  if not (Tensor.equal_approx ~tol:1e-9 a b) then
    Alcotest.failf "%s: %s <> %s" msg
      (Format.asprintf "%a" Tensor.pp a)
      (Format.asprintf "%a" Tensor.pp b)

let test_shape_basics () =
  let s = Shape.chw ~channels:3 ~height:4 ~width:5 in
  Alcotest.(check int) "numel" 60 (Shape.numel s);
  Alcotest.(check int) "rank" 3 (Shape.rank s);
  Alcotest.(check int) "channels" 3 (Shape.channels s);
  Alcotest.(check int) "height" 4 (Shape.height s);
  Alcotest.(check int) "width" 5 (Shape.width s);
  Alcotest.(check string) "to_string" "3x4x5" (Shape.to_string s);
  Alcotest.(check int) "scalar numel" 1 (Shape.numel Shape.scalar)

let test_shape_invalid () =
  Alcotest.check_raises "zero dim rejected"
    (Db_util.Error.Deepburning_error
       "tensor: Shape.of_list: non-positive dimension") (fun () ->
      ignore (Shape.of_list [ 3; 0 ]))

let test_tensor_get_set () =
  let t = Tensor.create (Shape.vector 4) in
  Tensor.set t 2 5.0;
  check_float "set/get" 5.0 (Tensor.get t 2);
  Alcotest.check_raises "oob get"
    (Db_util.Error.Deepburning_error "tensor: get: index 4 out of range [0, 4)")
    (fun () -> ignore (Tensor.get t 4))

let test_tensor_chw_indexing () =
  let t = Tensor.init (Shape.chw ~channels:2 ~height:3 ~width:4) float_of_int in
  check_float "get3" (float_of_int ((1 * 12) + (2 * 4) + 3)) (Tensor.get3 t ~c:1 ~y:2 ~x:3);
  Tensor.set3 t ~c:0 ~y:1 ~x:1 (-7.0);
  check_float "set3" (-7.0) (Tensor.get t 5)

let test_tensor_algebra () =
  let a = Tensor.of_array (Shape.vector 3) [| 1.0; 2.0; 3.0 |] in
  let b = Tensor.of_array (Shape.vector 3) [| 4.0; 5.0; 6.0 |] in
  tensor_eq "add" (Tensor.of_array (Shape.vector 3) [| 5.0; 7.0; 9.0 |]) (Tensor.add a b);
  tensor_eq "sub" (Tensor.of_array (Shape.vector 3) [| -3.0; -3.0; -3.0 |]) (Tensor.sub a b);
  tensor_eq "mul" (Tensor.of_array (Shape.vector 3) [| 4.0; 10.0; 18.0 |]) (Tensor.mul a b);
  check_float "dot" 32.0 (Tensor.dot a b);
  Alcotest.(check int) "max index" 2 (Tensor.max_index a)

let test_conv_identity_kernel () =
  (* 1x1 kernel of weight 1 is the identity. *)
  let input = Tensor.init (Shape.chw ~channels:1 ~height:4 ~width:4) float_of_int in
  let w = Tensor.of_array (Shape.of_list [ 1; 1; 1; 1 ]) [| 1.0 |] in
  let out =
    Ops.conv2d ~input ~weights:w ~bias:None ~stride:1 ~padding:Ops.no_padding
      ~group:1
  in
  tensor_eq "identity conv" input out

let test_conv_known_values () =
  (* 2x2 all-ones kernel over a 3x3 ramp = sliding window sums. *)
  let input =
    Tensor.of_array (Shape.chw ~channels:1 ~height:3 ~width:3)
      [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. |]
  in
  let w = Tensor.full (Shape.of_list [ 1; 1; 2; 2 ]) 1.0 in
  let out =
    Ops.conv2d ~input ~weights:w ~bias:None ~stride:1 ~padding:Ops.no_padding
      ~group:1
  in
  tensor_eq "window sums"
    (Tensor.of_array (Shape.chw ~channels:1 ~height:2 ~width:2) [| 12.; 16.; 24.; 28. |])
    out

let test_conv_bias_and_stride () =
  let input = Tensor.full (Shape.chw ~channels:1 ~height:4 ~width:4) 1.0 in
  let w = Tensor.full (Shape.of_list [ 2; 1; 2; 2 ]) 1.0 in
  let b = Tensor.of_array (Shape.vector 2) [| 10.0; 20.0 |] in
  let out =
    Ops.conv2d ~input ~weights:w ~bias:(Some b) ~stride:2 ~padding:Ops.no_padding
      ~group:1
  in
  Alcotest.(check string) "shape" "2x2x2" (Shape.to_string (Tensor.shape out));
  check_float "channel 0" 14.0 (Tensor.get3 out ~c:0 ~y:0 ~x:0);
  check_float "channel 1" 24.0 (Tensor.get3 out ~c:1 ~y:1 ~x:1)

let test_conv_padding () =
  let input = Tensor.full (Shape.chw ~channels:1 ~height:2 ~width:2) 1.0 in
  let w = Tensor.full (Shape.of_list [ 1; 1; 3; 3 ]) 1.0 in
  let out =
    Ops.conv2d ~input ~weights:w ~bias:None ~stride:1
      ~padding:(Ops.symmetric_padding 1) ~group:1
  in
  Alcotest.(check string) "same shape" "1x2x2" (Shape.to_string (Tensor.shape out));
  (* Corner sees all four input pixels. *)
  check_float "corner" 4.0 (Tensor.get3 out ~c:0 ~y:0 ~x:0)

let test_conv_groups () =
  (* Two groups: each output channel only sees its own input channel. *)
  let input =
    Tensor.of_array (Shape.chw ~channels:2 ~height:1 ~width:1) [| 3.0; 5.0 |]
  in
  let w = Tensor.of_array (Shape.of_list [ 2; 1; 1; 1 ]) [| 1.0; 1.0 |] in
  let out =
    Ops.conv2d ~input ~weights:w ~bias:None ~stride:1 ~padding:Ops.no_padding
      ~group:2
  in
  tensor_eq "grouped" input out

let test_max_pool () =
  let input =
    Tensor.of_array (Shape.chw ~channels:1 ~height:2 ~width:4)
      [| 1.; 5.; 2.; 6.; 3.; 4.; 8.; 7. |]
  in
  let out = Ops.max_pool ~input ~kernel:2 ~stride:2 in
  tensor_eq "max pool"
    (Tensor.of_array (Shape.chw ~channels:1 ~height:1 ~width:2) [| 5.0; 8.0 |])
    out

let test_avg_pool () =
  let input = Tensor.init (Shape.chw ~channels:1 ~height:2 ~width:2) float_of_int in
  let out = Ops.avg_pool ~input ~kernel:2 ~stride:2 in
  check_float "avg" 1.5 (Tensor.get out 0)

let test_global_avg_pool () =
  let input = Tensor.init (Shape.chw ~channels:2 ~height:2 ~width:2) float_of_int in
  let out = Ops.global_avg_pool ~input in
  tensor_eq "gap" (Tensor.of_array (Shape.vector 2) [| 1.5; 5.5 |]) out

let test_fully_connected () =
  let input = Tensor.of_array (Shape.vector 2) [| 1.0; 2.0 |] in
  let w = Tensor.of_array (Shape.of_list [ 2; 2 ]) [| 1.0; 0.0; 3.0; 4.0 |] in
  let b = Tensor.of_array (Shape.vector 2) [| 0.5; -1.0 |] in
  let out = Ops.fully_connected ~input ~weights:w ~bias:(Some b) in
  tensor_eq "fc" (Tensor.of_array (Shape.vector 2) [| 1.5; 10.0 |]) out

let test_softmax_properties () =
  let input = Tensor.of_array (Shape.vector 4) [| 1.0; 2.0; 3.0; 4.0 |] in
  let out = Ops.softmax input in
  check_float "sums to one" 1.0 (Tensor.fold ( +. ) 0.0 out);
  Alcotest.(check int) "argmax preserved" 3 (Tensor.max_index out);
  (* Shift invariance. *)
  let shifted = Ops.softmax (Tensor.map (fun x -> x +. 100.0) input) in
  tensor_eq "shift invariant" out shifted

let test_softmax_large_inputs () =
  (* Must not overflow. *)
  let out = Ops.softmax (Tensor.of_array (Shape.vector 2) [| 1000.0; 1001.0 |]) in
  Alcotest.(check bool) "finite" true (Float.is_finite (Tensor.get out 0))

let test_activations () =
  let input = Tensor.of_array (Shape.vector 3) [| -1.0; 0.0; 2.0 |] in
  tensor_eq "relu"
    (Tensor.of_array (Shape.vector 3) [| 0.0; 0.0; 2.0 |])
    (Ops.relu input);
  check_float "sigmoid(0)" 0.5 (Tensor.get (Ops.sigmoid input) 1);
  check_float "tanh(0)" 0.0 (Tensor.get (Ops.tanh_act input) 1)

let test_lrn_unit_scale () =
  (* With alpha = 0 the LRN with k = 1 is the identity. *)
  let input = Tensor.init (Shape.chw ~channels:3 ~height:2 ~width:2) float_of_int in
  let out = Ops.lrn ~input ~local_size:3 ~alpha:0.0 ~beta:0.75 ~k:1.0 in
  tensor_eq "identity when alpha=0" input out

let test_lrn_suppresses () =
  let input = Tensor.full (Shape.chw ~channels:3 ~height:1 ~width:1) 2.0 in
  let out = Ops.lrn ~input ~local_size:3 ~alpha:1.0 ~beta:0.75 ~k:1.0 in
  Alcotest.(check bool) "values shrink" true (Tensor.get out 0 < 2.0)

let test_concat () =
  let a = Tensor.full (Shape.chw ~channels:1 ~height:2 ~width:2) 1.0 in
  let b = Tensor.full (Shape.chw ~channels:2 ~height:2 ~width:2) 2.0 in
  let out = Ops.concat_channels [ a; b ] in
  Alcotest.(check string) "shape" "3x2x2" (Shape.to_string (Tensor.shape out));
  check_float "first block" 1.0 (Tensor.get out 0);
  check_float "second block" 2.0 (Tensor.get out 4)

let test_conv_output_dim () =
  Alcotest.(check int) "classic" 55
    (Ops.conv_output_dim ~input:227 ~kernel:11 ~stride:4 ~pad_lo:0 ~pad_hi:0);
  Alcotest.(check int) "same padding" 16
    (Ops.conv_output_dim ~input:16 ~kernel:3 ~stride:1 ~pad_lo:1 ~pad_hi:1)

(* qcheck properties *)

let rng_tensor seed shape =
  Tensor.random_uniform (Db_util.Rng.create seed) shape ~min:(-2.0) ~max:2.0

let prop_add_commutative =
  QCheck.Test.make ~name:"tensor add commutative" ~count:50
    QCheck.(pair small_int small_int)
    (fun (seed, n) ->
      let n = 1 + (abs n mod 20) in
      let a = rng_tensor seed (Shape.vector n)
      and b = rng_tensor (seed + 1) (Shape.vector n) in
      Tensor.equal_approx (Tensor.add a b) (Tensor.add b a))

let prop_dot_bilinear =
  QCheck.Test.make ~name:"dot scales linearly" ~count:50 QCheck.small_int
    (fun seed ->
      let a = rng_tensor seed (Shape.vector 8)
      and b = rng_tensor (seed + 1) (Shape.vector 8) in
      Float.abs (Tensor.dot (Tensor.scale 2.0 a) b -. (2.0 *. Tensor.dot a b))
      < 1e-9)

let prop_conv_linear =
  (* conv(x + y) = conv(x) + conv(y) for linear convolution (no bias). *)
  QCheck.Test.make ~name:"conv2d additive" ~count:20 QCheck.small_int
    (fun seed ->
      let shape = Shape.chw ~channels:2 ~height:5 ~width:5 in
      let x = rng_tensor seed shape and y = rng_tensor (seed + 7) shape in
      let w = rng_tensor (seed + 13) (Shape.of_list [ 3; 2; 3; 3 ]) in
      let conv input =
        Ops.conv2d ~input ~weights:w ~bias:None ~stride:1
          ~padding:Ops.no_padding ~group:1
      in
      Tensor.equal_approx ~tol:1e-6
        (conv (Tensor.add x y))
        (Tensor.add (conv x) (conv y)))

let prop_softmax_simplex =
  QCheck.Test.make ~name:"softmax lands on the simplex" ~count:50
    QCheck.small_int (fun seed ->
      let t = rng_tensor seed (Shape.vector 6) in
      let s = Ops.softmax t in
      Float.abs (Tensor.fold ( +. ) 0.0 s -. 1.0) < 1e-9
      && Tensor.fold (fun acc x -> acc && x >= 0.0) true s)

let prop_max_pool_bound =
  QCheck.Test.make ~name:"max pool dominates avg pool" ~count:30
    QCheck.small_int (fun seed ->
      let input = rng_tensor seed (Shape.chw ~channels:1 ~height:6 ~width:6) in
      let mx = Ops.max_pool ~input ~kernel:2 ~stride:2 in
      let av = Ops.avg_pool ~input ~kernel:2 ~stride:2 in
      let ok = ref true in
      Tensor.iteri (fun i v -> if v > Tensor.get mx i +. 1e-9 then ok := false) av;
      !ok)

let suite =
  [
    ( "tensor.shape",
      [
        Alcotest.test_case "basics" `Quick test_shape_basics;
        Alcotest.test_case "invalid" `Quick test_shape_invalid;
      ] );
    ( "tensor.core",
      [
        Alcotest.test_case "get/set" `Quick test_tensor_get_set;
        Alcotest.test_case "chw indexing" `Quick test_tensor_chw_indexing;
        Alcotest.test_case "algebra" `Quick test_tensor_algebra;
      ] );
    ( "tensor.ops",
      [
        Alcotest.test_case "conv identity" `Quick test_conv_identity_kernel;
        Alcotest.test_case "conv values" `Quick test_conv_known_values;
        Alcotest.test_case "conv bias+stride" `Quick test_conv_bias_and_stride;
        Alcotest.test_case "conv padding" `Quick test_conv_padding;
        Alcotest.test_case "conv groups" `Quick test_conv_groups;
        Alcotest.test_case "max pool" `Quick test_max_pool;
        Alcotest.test_case "avg pool" `Quick test_avg_pool;
        Alcotest.test_case "global avg pool" `Quick test_global_avg_pool;
        Alcotest.test_case "fully connected" `Quick test_fully_connected;
        Alcotest.test_case "softmax" `Quick test_softmax_properties;
        Alcotest.test_case "softmax stability" `Quick test_softmax_large_inputs;
        Alcotest.test_case "activations" `Quick test_activations;
        Alcotest.test_case "lrn identity" `Quick test_lrn_unit_scale;
        Alcotest.test_case "lrn suppresses" `Quick test_lrn_suppresses;
        Alcotest.test_case "concat" `Quick test_concat;
        Alcotest.test_case "conv output dim" `Quick test_conv_output_dim;
      ] );
    ( "tensor.properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_add_commutative;
          prop_dot_bilinear;
          prop_conv_linear;
          prop_softmax_simplex;
          prop_max_pool_bound;
        ] );
  ]
