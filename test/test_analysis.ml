(* Tests for db_analysis: seeded-defect fixtures asserting exact diagnostic
   codes, and a clean run over every model-zoo generated design. *)

module Rtl = Db_hdl.Rtl
module Fsm = Db_hdl.Fsm
module A = Db_analysis.Analyze
module D = Db_analysis.Diagnostic

let codes diags = List.map (fun (d : D.t) -> d.D.code) diags

let has_code code diags = List.mem code (codes diags)

let check_code name code diags =
  Alcotest.(check bool) (name ^ " flags " ^ code) true (has_code code diags)

let check_no_code name code diags =
  Alcotest.(check bool) (name ^ " avoids " ^ code) false (has_code code diags)

(* A single structural module wrapped as a full design, with an 8-bit input
   [a4]-style net vocabulary declared per fixture. *)
let structural ?(ports = []) ?(nets = []) ?(instances = []) assigns =
  {
    Rtl.top = "fixture";
    modules =
      [
        {
          Rtl.mod_name = "fixture";
          ports =
            { Rtl.port_name = "clk"; direction = Rtl.Input; width = 1 }
            :: ports;
          localparams = [];
          body = Rtl.Structural { nets; instances; assigns };
        };
      ];
  }

let out name width = { Rtl.port_name = name; direction = Rtl.Output; width }
let inp name width = { Rtl.port_name = name; direction = Rtl.Input; width }
let net name width = { Rtl.net_name = name; net_width = width }

(* --- drivers ------------------------------------------------------------- *)

let test_multi_driver () =
  let d =
    structural
      ~ports:[ inp "a" 8; inp "b" 8; out "y" 8 ]
      [ ("y", "a"); ("y", "b") ]
  in
  check_code "double assign" A.code_multi_driver (A.design d)

let test_multi_driver_overlapping_slices () =
  let d =
    structural
      ~ports:[ inp "a" 4; out "y" 8 ]
      [ ("y[3:0]", "a"); ("y[2:1]", "a[1:0]") ]
  in
  check_code "overlapping slices" A.code_multi_driver (A.design d)

let test_disjoint_slices_ok () =
  let d =
    structural
      ~ports:[ inp "a" 4; out "y" 8 ]
      [ ("y[7:4]", "a"); ("y[3:0]", "a") ]
  in
  let diags = A.design d in
  check_no_code "disjoint slices" A.code_multi_driver diags;
  Alcotest.(check (list string)) "fully clean" [] (codes (D.errors diags))

(* --- widths -------------------------------------------------------------- *)

let test_assign_width_mismatch () =
  let d = structural ~ports:[ inp "a" 4; out "y" 8 ] [ ("y", "a") ] in
  check_code "4 into 8" A.code_width_mismatch (A.design d)

let test_assign_width_ok_with_expr () =
  let d =
    structural
      ~ports:[ inp "a" 4; out "y" 8 ]
      [ ("y", "{{4{1'b0}}, a}") ]
  in
  check_no_code "zero-extended" A.code_width_mismatch (A.design d)

let leaf_callee =
  {
    Rtl.mod_name = "leaf";
    ports = [ inp "clk" 1; inp "d" 8; out "q" 8 ];
    localparams = [];
    body = Rtl.Behavioral [ "assign q = d;" ];
  }

let with_callee (design : Rtl.design) =
  { design with Rtl.modules = leaf_callee :: design.Rtl.modules }

let test_port_width_mismatch () =
  let d =
    with_callee
      (structural
         ~nets:[ net "narrow" 4; net "qq" 8 ]
         ~ports:[ out "y" 8 ]
         ~instances:
           [
             {
               Rtl.inst_name = "u0";
               module_ref = "leaf";
               parameters = [];
               connections =
                 [ ("clk", "clk"); ("d", "narrow"); ("q", "qq") ];
             };
           ]
         [ ("y", "qq"); ("narrow", "4'd0") ])
  in
  check_code "narrow actual on 8-bit port" A.code_port_width_mismatch
    (A.design d)

let test_unknown_param_override () =
  let d =
    with_callee
      (structural
         ~nets:[ net "d8" 8; net "q8" 8 ]
         ~ports:[ out "y" 8 ]
         ~instances:
           [
             {
               Rtl.inst_name = "u0";
               module_ref = "leaf";
               parameters = [ ("BOGUS", 3) ];
               connections = [ ("clk", "clk"); ("d", "d8"); ("q", "q8") ];
             };
           ]
         [ ("y", "q8"); ("d8", "8'd1") ])
  in
  check_code "undeclared parameter" A.code_param_unknown (A.design d)

(* --- combinational loops -------------------------------------------------- *)

let test_comb_loop () =
  let d =
    structural
      ~nets:[ net "a" 1; net "b" 1 ]
      ~ports:[ out "y" 1 ]
      [ ("a", "b"); ("b", "a"); ("y", "a") ]
  in
  check_code "a=b, b=a" A.code_comb_loop (A.design d)

(* --- net liveness --------------------------------------------------------- *)

let test_undriven_and_unused () =
  let d =
    structural
      ~nets:[ net "floating_src" 8; net "dead_end" 8 ]
      ~ports:[ out "y" 8 ]
      [ ("y", "floating_src"); ("dead_end", "8'd5") ]
  in
  let diags = A.design d in
  check_code "read but undriven" A.code_undriven_net diags;
  check_code "driven but unread" A.code_unused_net diags

let test_redeclared_net () =
  let d =
    structural
      ~nets:[ net "x" 8; net "x" 8 ]
      ~ports:[ out "y" 8 ]
      [ ("x", "8'd1"); ("y", "x") ]
  in
  check_code "net declared twice" A.code_redeclared (A.design d)

let test_implicit_net () =
  let d = structural ~ports:[ out "y" 8 ] [ ("y", "ghost") ] in
  check_code "undeclared identifier" A.code_implicit_net (A.design d)

(* --- latch inference ------------------------------------------------------ *)

let test_latch_inference () =
  let d =
    {
      Rtl.top = "latchy";
      modules =
        [
          {
            Rtl.mod_name = "latchy";
            ports = [ inp "sel" 2; inp "a" 1; out "q" 1 ];
            localparams = [];
            body =
              Rtl.Behavioral
                [
                  "reg q;";
                  "always @* begin";
                  "  case (sel)";
                  "    2'd0: q = a;";
                  "    2'd1: q = ~a;";
                  "  endcase";
                  "end";
                ];
          };
        ];
    }
  in
  check_code "case without default" A.code_latch (A.design d)

let test_no_latch_with_default () =
  let d =
    {
      Rtl.top = "clean";
      modules =
        [
          {
            Rtl.mod_name = "clean";
            ports = [ inp "sel" 2; inp "a" 1; out "q" 1 ];
            localparams = [];
            body =
              Rtl.Behavioral
                [
                  "reg q;";
                  "always @* begin";
                  "  case (sel)";
                  "    2'd0: q = a;";
                  "    default: q = ~a;";
                  "  endcase";
                  "end";
                ];
          };
        ];
    }
  in
  check_no_code "default arm present" A.code_latch (A.design d)

(* --- FSM checks ----------------------------------------------------------- *)

let base_fsm =
  {
    Fsm.fsm_name = "f";
    states = [ "idle"; "run" ];
    initial = "idle";
    inputs = [ "go" ];
    outputs = [ "busy" ];
    transitions =
      [
        {
          Fsm.from_state = "idle";
          guard = Some "go";
          to_state = "run";
          actions = [ "busy" ];
        };
        { Fsm.from_state = "run"; guard = None; to_state = "idle"; actions = [] };
      ];
  }

let test_fsm_unreachable_state () =
  let f = { base_fsm with Fsm.states = base_fsm.Fsm.states @ [ "limbo" ] } in
  check_code "limbo" A.code_fsm_unreachable (A.fsm f)

let test_fsm_sink_state () =
  let f =
    {
      base_fsm with
      Fsm.states = base_fsm.Fsm.states @ [ "stuck" ];
      transitions =
        base_fsm.Fsm.transitions
        @ [
            {
              Fsm.from_state = "idle";
              guard = None;
              to_state = "stuck";
              actions = [];
            };
          ];
    }
  in
  check_code "stuck has no exit" A.code_fsm_sink (A.fsm f)

let test_fsm_invalid () =
  let f = { base_fsm with Fsm.states = [ "idle"; "run"; "idle" ] } in
  check_code "duplicate state name" A.code_fsm_invalid (A.fsm f)

let test_fsm_clean () =
  Alcotest.(check (list string)) "healthy fsm" [] (codes (A.fsm base_fsm))

(* --- rendering & policy --------------------------------------------------- *)

let test_strictify () =
  let d = structural ~ports:[ out "y" 8 ] [ ("y", "ghost") ] in
  let diags = A.design d in
  Alcotest.(check bool) "warnings before" true (D.warnings diags <> []);
  Alcotest.(check (list string)) "no errors before" [] (codes (D.errors diags));
  let strict = D.strictify diags in
  Alcotest.(check (list string)) "no warnings after" []
    (codes (D.warnings strict));
  Alcotest.(check bool) "errors after" true (D.errors strict <> [])

let test_assert_no_errors () =
  let bad =
    structural ~ports:[ inp "a" 8; inp "b" 8; out "y" 8 ]
      [ ("y", "a"); ("y", "b") ]
  in
  (match A.assert_no_errors bad with
  | () -> Alcotest.fail "expected multi-driver rejection"
  | exception Db_util.Error.Deepburning_error _ -> ());
  let warn_only = structural ~ports:[ out "y" 8 ] [ ("y", "ghost") ] in
  A.assert_no_errors warn_only;
  match A.assert_no_errors ~strict:true warn_only with
  | () -> Alcotest.fail "expected strict promotion"
  | exception Db_util.Error.Deepburning_error _ -> ()

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let test_json_rendering () =
  let d = structural ~ports:[ out "y" 8 ] [ ("y", "ghost") ] in
  let json = D.json_of_list (A.design d) in
  Alcotest.(check bool) "array" true
    (String.length json > 1 && json.[0] = '[');
  Alcotest.(check bool) "code field" true (contains json "\"code\"");
  Alcotest.(check bool) "severity field" true (contains json "\"severity\"");
  Alcotest.(check bool) "module field" true (contains json "\"module\"");
  Alcotest.(check bool) "W107 present" true (contains json A.code_implicit_net)

let test_to_string_format () =
  let diag =
    D.v ~code:"DB-E001" ~severity:D.Error ~scope:"m" ~item:"x" "boom"
  in
  Alcotest.(check string) "rendering"
    "error DB-E001 [m] 'x': boom" (D.to_string diag)

(* --- the generator's own designs are clean -------------------------------- *)

let zoo_sources =
  [
    ("mlp", Db_workloads.Model_zoo.mlp_prototxt);
    ("cmac", Db_workloads.Model_zoo.cmac_prototxt);
    ("mnist", Db_workloads.Model_zoo.mnist_prototxt);
    ("cifar", Db_workloads.Model_zoo.cifar_prototxt);
    ("cifar-lite", Db_workloads.Model_zoo.cifar_lite_prototxt);
    ("alexnet", Db_workloads.Model_zoo.alexnet_prototxt);
    ("nin", Db_workloads.Model_zoo.nin_prototxt);
    ("googlenet-like", Db_workloads.Model_zoo.googlenet_like_prototxt);
    ("hopfield", Db_workloads.Model_zoo.hopfield_prototxt ~cities:5);
    ("lenet5", Db_workloads.Model_zoo.lenet5_prototxt);
    ("vgg16", Db_workloads.Model_zoo.vgg16_prototxt);
  ]

let constraint_script =
  {|constraint { device: "zynq-7045" dsps: 16 luts: 60000 ffs: 40000 bram_kb: 1024 }|}

let test_model_zoo_designs_clean () =
  List.iter
    (fun (name, model) ->
      let design =
        Db_core.Generator.generate_from_script ~model ~constraint_script ()
      in
      let diags = Db_core.Design.analyze design in
      Alcotest.(check (list string))
        (name ^ ": no errors") [] (codes (D.errors diags));
      Alcotest.(check (list string))
        (name ^ ": no warnings") [] (codes (D.warnings diags)))
    zoo_sources

let suite =
  [
    ( "analysis.drivers",
      [
        Alcotest.test_case "multi-driver" `Quick test_multi_driver;
        Alcotest.test_case "overlapping slices" `Quick
          test_multi_driver_overlapping_slices;
        Alcotest.test_case "disjoint slices ok" `Quick test_disjoint_slices_ok;
      ] );
    ( "analysis.widths",
      [
        Alcotest.test_case "assign mismatch" `Quick test_assign_width_mismatch;
        Alcotest.test_case "zero-extend ok" `Quick test_assign_width_ok_with_expr;
        Alcotest.test_case "port mismatch" `Quick test_port_width_mismatch;
        Alcotest.test_case "unknown param" `Quick test_unknown_param_override;
      ] );
    ( "analysis.structure",
      [
        Alcotest.test_case "comb loop" `Quick test_comb_loop;
        Alcotest.test_case "undriven/unused" `Quick test_undriven_and_unused;
        Alcotest.test_case "redeclared" `Quick test_redeclared_net;
        Alcotest.test_case "implicit net" `Quick test_implicit_net;
        Alcotest.test_case "latch" `Quick test_latch_inference;
        Alcotest.test_case "no latch with default" `Quick
          test_no_latch_with_default;
      ] );
    ( "analysis.fsm",
      [
        Alcotest.test_case "unreachable" `Quick test_fsm_unreachable_state;
        Alcotest.test_case "sink" `Quick test_fsm_sink_state;
        Alcotest.test_case "invalid" `Quick test_fsm_invalid;
        Alcotest.test_case "clean" `Quick test_fsm_clean;
      ] );
    ( "analysis.policy",
      [
        Alcotest.test_case "strictify" `Quick test_strictify;
        Alcotest.test_case "assert_no_errors" `Quick test_assert_no_errors;
        Alcotest.test_case "json" `Quick test_json_rendering;
        Alcotest.test_case "to_string" `Quick test_to_string_format;
      ] );
    ( "analysis.zoo",
      [
        Alcotest.test_case "every zoo design clean" `Slow
          test_model_zoo_designs_clean;
      ] );
  ]
