(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation section (Section 4), the headline summary, the design-choice
   ablations from DESIGN.md, and a Bechamel micro-benchmark group (one
   Test.make per table/figure) measuring the harness itself.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig8 table3  # selected sections
     dune exec bench/main.exe -- quick        # skip AlexNet/NiN scale
   Sections: table1 table2 fig8 fig9 fig10 table3 summary training
             throughput ablation-tiling ablation-lut ablation-lanes
             ablation-fixed report bechamel
   (report writes RESULTS.md and is skipped by the default run) *)

module Experiments = Db_report.Experiments

let section_header title = Printf.printf "\n=== %s ===\n\n%!" title

let quick = ref false

let config () =
  if !quick then Experiments.quick_config else Experiments.default_config

(* fig8/fig9 share the generation+simulation work; memoise per run. *)
let perf_rows : Experiments.perf_row list option ref = ref None

let get_perf () =
  match !perf_rows with
  | Some rows -> rows
  | None ->
      let rows = Experiments.fig8_fig9 (config ()) in
      perf_rows := Some rows;
      rows

let accuracy_rows : Experiments.accuracy_row list option ref = ref None

let get_accuracy () =
  match !accuracy_rows with
  | Some rows -> rows
  | None ->
      let rows = Experiments.fig10 (config ()) in
      accuracy_rows := Some rows;
      rows

let run_table1 () =
  section_header "Table 1: decomposition of the typical neural networks";
  print_string (Experiments.render_table1 (Experiments.table1 ()))

let run_table2 () =
  section_header "Table 2: benchmarks";
  print_string (Experiments.render_table2 (Experiments.table2 ()))

let run_fig8 () =
  section_header "Fig. 8: performance comparison (forward-propagation time)";
  print_string (Experiments.render_fig8 (get_perf ()))

let run_fig9 () =
  section_header "Fig. 9: energy comparison";
  print_string (Experiments.render_fig9 (get_perf ()))

let run_fig10 () =
  section_header "Fig. 10: accuracy comparison";
  print_string (Experiments.render_fig10 (get_accuracy ()))

let run_table3 () =
  section_header "Table 3: hardware resource occupation";
  print_string (Experiments.render_table3 (Experiments.table3 (config ())))

let run_summary () =
  section_header "Headline summary (paper's claimed relations)";
  print_string
    (Experiments.render_summary
       (Experiments.summarise (get_perf ()) (get_accuracy ())))

let run_training () =
  section_header
    "Training acceleration (the intro's model-search motivation)";
  print_string (Experiments.render_training (Experiments.training (config ())))

let run_throughput () =
  section_header "Batch throughput (pipelined processing of an input set)";
  print_string (Experiments.render_throughput (Experiments.throughput (config ())))

let run_ablation_tiling () =
  section_header "Ablation: Method-1 data tiling on vs off";
  let rows = Experiments.ablation_tiling (config ()) in
  if rows = [] then
    print_string
      "all selected benchmarks fit on-chip; tiling has no effect at this scale\n"
  else print_string (Experiments.render_ablation_tiling rows)

let run_ablation_lut () =
  section_header "Ablation: Approx LUT size vs approximation error";
  print_string
    (Experiments.render_ablation_lut
       (Experiments.ablation_lut
          ~entries_list:[ 16; 32; 64; 128; 256; 512; 1024 ]))

let run_ablation_lanes () =
  section_header "Ablation: spatial-folding lane sweep (MNIST)";
  print_string
    (Experiments.render_ablation_lanes
       (Experiments.ablation_lanes ~benchmark:"MNIST"
          ~lanes_list:[ 1; 2; 4; 8; 16 ]))

let run_ablation_fixed () =
  section_header "Ablation: fixed-point width vs accuracy";
  let cfg =
    {
      (config ()) with
      Experiments.benchmarks =
        List.filter
          (fun n -> n <> "Alexnet" && n <> "NiN")
          (config ()).Experiments.benchmarks;
    }
  in
  print_string
    (Experiments.render_ablation_fixed_point
       (Experiments.ablation_fixed_point cfg
          ~widths:[ (8, 4); (12, 6); (16, 8); (24, 12) ]))

let run_report () =
  section_header "Writing RESULTS.md (generated markdown report)";
  Db_report.Report_writer.write ~path:"RESULTS.md" (config ());
  Printf.printf "wrote %s/RESULTS.md\n" (Sys.getcwd ())

let run_bechamel () =
  section_header "Bechamel micro-benchmarks (harness regeneration latency)";
  let open Bechamel in
  let cfg_small = { Experiments.seed = 42; benchmarks = [ "ANN-0"; "CMAC" ] } in
  let bench_of name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"deepburning"
      [
        bench_of "table1" (fun () -> ignore (Experiments.table1 ()));
        bench_of "table2" (fun () -> ignore (Experiments.table2 ()));
        bench_of "fig8-fig9" (fun () -> ignore (Experiments.fig8_fig9 cfg_small));
        bench_of "table3" (fun () -> ignore (Experiments.table3 cfg_small));
        bench_of "generate-ann0" (fun () ->
            ignore
              (Experiments.design_for (Db_workloads.Benchmarks.find "ANN-0")));
        bench_of "simulate-mnist" (fun () ->
            ignore
              (Db_sim.Simulator.timing
                 (Experiments.design_for (Db_workloads.Benchmarks.find "MNIST"))));
      ]
  in
  let benchmark_cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw =
    Benchmark.all benchmark_cfg [ Toolkit.Instance.monotonic_clock ] tests
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> Printf.sprintf "%.0f ns/run" est
        | Some [] | None -> "n/a"
      in
      rows := [ name; ns ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  print_string
    (Db_report.Table.render ~headers:[ "benchmark"; "monotonic clock" ] ~rows)

let sections =
  [
    ("table1", run_table1);
    ("table2", run_table2);
    ("fig8", run_fig8);
    ("fig9", run_fig9);
    ("fig10", run_fig10);
    ("table3", run_table3);
    ("summary", run_summary);
    ("training", run_training);
    ("throughput", run_throughput);
    ("ablation-tiling", run_ablation_tiling);
    ("ablation-lut", run_ablation_lut);
    ("ablation-lanes", run_ablation_lanes);
    ("ablation-fixed", run_ablation_fixed);
    ("report", run_report);
    ("bechamel", run_bechamel);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a -> if a = "quick" then begin quick := true; false end else true)
      args
  in
  let selected =
    match args with
    | [] ->
        (* [report] re-runs every experiment to build RESULTS.md; run it
           only when asked for explicitly. *)
        List.filter (fun n -> n <> "report") (List.map fst sections)
    | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n sections) then begin
              Printf.eprintf "unknown section %S; available: %s\n" n
                (String.concat " " (List.map fst sections));
              exit 1
            end)
          names;
        names
  in
  Printf.printf "DeepBurning (DAC'16) evaluation reproduction%s — seed %d\n"
    (if !quick then " [quick]" else "")
    (config ()).Experiments.seed;
  List.iter (fun name -> (List.assoc name sections) ()) selected
