(* Tests for db_util: deterministic RNG and statistics. *)

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Db_util.Rng.create 7 and b = Db_util.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64)
      "same stream" (Db_util.Rng.next_int64 a) (Db_util.Rng.next_int64 b)
  done

let test_rng_copy_independent () =
  let a = Db_util.Rng.create 3 in
  let c = Db_util.Rng.copy a in
  let va = Db_util.Rng.next_int64 a in
  let vc = Db_util.Rng.next_int64 c in
  Alcotest.(check int64) "copy continues identically" va vc;
  let (_ : int64) = Db_util.Rng.next_int64 a in
  (* a is now one ahead of c *)
  Alcotest.(check bool)
    "streams diverge after unequal draws" true
    (Db_util.Rng.next_int64 a <> Db_util.Rng.next_int64 c)

let test_rng_int_bounds () =
  let rng = Db_util.Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Db_util.Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "int out of range: %d" v
  done

let test_rng_float_bounds () =
  let rng = Db_util.Rng.create 13 in
  for _ = 1 to 10_000 do
    let v = Db_util.Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "float out of range: %g" v
  done

let test_rng_uniform_mean () =
  let rng = Db_util.Rng.create 17 in
  let xs = Array.init 20_000 (fun _ -> Db_util.Rng.uniform rng ~min:(-1.0) ~max:1.0) in
  let mean = Db_util.Stats.mean xs in
  if Float.abs mean > 0.03 then Alcotest.failf "uniform mean biased: %g" mean

let test_rng_gaussian_moments () =
  let rng = Db_util.Rng.create 19 in
  let xs =
    Array.init 20_000 (fun _ -> Db_util.Rng.gaussian rng ~mean:2.0 ~stddev:3.0)
  in
  let mean = Db_util.Stats.mean xs and sd = Db_util.Stats.stddev xs in
  if Float.abs (mean -. 2.0) > 0.1 then Alcotest.failf "gaussian mean: %g" mean;
  if Float.abs (sd -. 3.0) > 0.1 then Alcotest.failf "gaussian stddev: %g" sd

let test_shuffle_permutation () =
  let rng = Db_util.Rng.create 23 in
  let arr = Array.init 50 (fun i -> i) in
  Db_util.Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_split_independence () =
  let a = Db_util.Rng.create 29 in
  let b = Db_util.Rng.split a in
  Alcotest.(check bool)
    "split streams differ" true
    (Db_util.Rng.next_int64 a <> Db_util.Rng.next_int64 b)

let test_stats_mean () = check_float "mean" 2.0 (Db_util.Stats.mean [| 1.0; 2.0; 3.0 |])

let test_stats_sum_kahan () =
  (* Sum of many tiny values plus a large one: naive summation loses the
     tiny ones, compensated summation keeps them. *)
  let xs = Array.make 10_001 1e-8 in
  xs.(0) <- 1e8;
  let total = Db_util.Stats.sum xs in
  check_float "kahan" 1e8 (total -. 1e-4)

let test_stats_stddev () =
  (* Population stddev: deviations are all exactly 1. *)
  check_float "stddev" 1.0 (Db_util.Stats.stddev [| 1.0; 3.0; 1.0; 3.0 |])

let test_stats_geomean () =
  check_float "geomean" 2.0 (Db_util.Stats.geomean [| 1.0; 4.0 |])

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Db_util.Stats.percentile xs 50.0);
  check_float "p0" 1.0 (Db_util.Stats.percentile xs 0.0);
  check_float "p100" 5.0 (Db_util.Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Db_util.Stats.percentile xs 25.0)

let test_stats_min_max () =
  let mn, mx = Db_util.Stats.min_max [| 3.0; -1.0; 7.0 |] in
  check_float "min" (-1.0) mn;
  check_float "max" 7.0 mx

let test_rel_accuracy_exact () =
  let golden = [| 1.0; -2.0; 3.0 |] in
  check_float "identical vectors are 100%" 100.0
    (Db_util.Stats.rel_distance_accuracy ~golden ~approx:golden)

let test_rel_accuracy_degrades () =
  let golden = [| 1.0; 1.0 |] in
  let close = Db_util.Stats.rel_distance_accuracy ~golden ~approx:[| 1.01; 0.99 |] in
  let far = Db_util.Stats.rel_distance_accuracy ~golden ~approx:[| 1.5; 0.5 |] in
  Alcotest.(check bool) "closer is better" true (close > far);
  Alcotest.(check bool) "clamped at 0" true (far >= 0.0)

let test_error_message () =
  Alcotest.check_raises "failf_at prefixes component"
    (Db_util.Error.Deepburning_error "unit-test: boom 42") (fun () ->
      Db_util.Error.failf_at ~component:"unit-test" "boom %d" 42)

let suite =
  [
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "copy" `Quick test_rng_copy_independent;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
        Alcotest.test_case "split" `Quick test_split_independence;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "kahan sum" `Quick test_stats_sum_kahan;
        Alcotest.test_case "stddev" `Quick test_stats_stddev;
        Alcotest.test_case "geomean" `Quick test_stats_geomean;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "min max" `Quick test_stats_min_max;
        Alcotest.test_case "Eq(1) exact" `Quick test_rel_accuracy_exact;
        Alcotest.test_case "Eq(1) monotone" `Quick test_rel_accuracy_degrades;
        Alcotest.test_case "error format" `Quick test_error_message;
      ] );
  ]
