(* Tests for db_baseline: the CPU model, the Custom hand-design model and
   the Zhang FPGA'15 reference point. *)

module Cpu_model = Db_baseline.Cpu_model
module Custom = Db_baseline.Custom
module Zhang = Db_baseline.Zhang_fpga15

let cpu = Cpu_model.xeon_2_4ghz

let test_effective_rate_monotone () =
  (* Bigger layers run closer to peak. *)
  let small = Cpu_model.effective_gmacs cpu ~macs:1_000 in
  let mid = Cpu_model.effective_gmacs cpu ~macs:1_000_000 in
  let big = Cpu_model.effective_gmacs cpu ~macs:100_000_000 in
  Alcotest.(check bool) "monotone" true (small <= mid && mid <= big);
  Alcotest.(check bool) "bounded by peak" true (big <= cpu.Cpu_model.peak_gmacs);
  Alcotest.(check bool) "floored" true (small >= cpu.Cpu_model.min_gmacs)

let test_layer_overhead_floor () =
  Alcotest.(check bool) "empty layer still costs dispatch" true
    (Cpu_model.layer_seconds cpu ~macs:0 ~other_ops:0 >= cpu.Cpu_model.layer_overhead_s)

let test_forward_scales_with_model () =
  let small =
    Db_workloads.Model_zoo.build
      (Db_workloads.Model_zoo.ann_prototxt ~name:"s" ~inputs:4 ~hidden1:8
         ~hidden2:8 ~outputs:2)
  in
  let big = Db_workloads.Model_zoo.build Db_workloads.Model_zoo.cifar_prototxt in
  Alcotest.(check bool) "bigger model slower" true
    (Cpu_model.forward_seconds cpu big > Cpu_model.forward_seconds cpu small)

let test_cpu_energy () =
  let net =
    Db_workloads.Model_zoo.build
      (Db_workloads.Model_zoo.ann_prototxt ~name:"s" ~inputs:4 ~hidden1:8
         ~hidden2:8 ~outputs:2)
  in
  let t = Cpu_model.forward_seconds cpu net in
  Alcotest.(check (float 1e-12)) "E = P t" (t *. 95.0) (Cpu_model.forward_energy_j cpu net)

let test_alexnet_cpu_plausible () =
  (* The substitute CPU model should put AlexNet in the 50-500 ms band a
     2016-era single socket would deliver. *)
  let net = Db_workloads.Model_zoo.build Db_workloads.Model_zoo.alexnet_prototxt in
  let t = Cpu_model.forward_seconds cpu net in
  Alcotest.(check bool) (Printf.sprintf "alexnet %.0f ms plausible" (t *. 1e3))
    true
    (t > 0.05 && t < 0.5)

let test_custom_factors () =
  Alcotest.(check bool) "custom faster factor > 1" true (Custom.speedup_over_generated > 1.0);
  Alcotest.(check bool) "custom resource saving < 1" true (Custom.lut_ff_saving < 1.0)

let test_custom_of_design () =
  let net =
    Db_workloads.Model_zoo.build
      (Db_workloads.Model_zoo.ann_prototxt ~name:"c" ~inputs:4 ~hidden1:8
         ~hidden2:8 ~outputs:2)
  in
  let design =
    Db_core.Generator.generate
      (Db_core.Constraints.with_dsp_cap Db_core.Constraints.db_medium 2)
      net
  in
  let report = Db_sim.Simulator.timing design in
  let custom = Custom.of_design design report in
  Alcotest.(check bool) "custom faster" true
    (custom.Custom.custom_seconds < report.Db_sim.Simulator.seconds);
  let used = Db_core.Design.resource_usage design in
  Alcotest.(check bool) "custom fewer luts" true
    (custom.Custom.custom_resources.Db_fpga.Resource.luts < used.Db_fpga.Resource.luts);
  Alcotest.(check int) "same dsps" used.Db_fpga.Resource.dsps
    custom.Custom.custom_resources.Db_fpga.Resource.dsps;
  Alcotest.(check bool) "custom lower energy" true
    (custom.Custom.custom_energy_j < report.Db_sim.Simulator.energy_j)

let test_zhang_constants () =
  Alcotest.(check (float 1e-9)) "time" 21.6e-3 Zhang.alexnet_seconds;
  Alcotest.(check (float 1e-9)) "energy" 0.5 Zhang.alexnet_energy_j;
  Alcotest.(check string) "device" "Virtex7-485T" Zhang.device.Db_fpga.Device.device_name

let suite =
  [
    ( "baseline.cpu",
      [
        Alcotest.test_case "rate curve" `Quick test_effective_rate_monotone;
        Alcotest.test_case "dispatch floor" `Quick test_layer_overhead_floor;
        Alcotest.test_case "scales with model" `Quick test_forward_scales_with_model;
        Alcotest.test_case "energy" `Quick test_cpu_energy;
        Alcotest.test_case "alexnet plausible" `Quick test_alexnet_cpu_plausible;
      ] );
    ( "baseline.custom",
      [
        Alcotest.test_case "factors" `Quick test_custom_factors;
        Alcotest.test_case "of design" `Quick test_custom_of_design;
      ] );
    ( "baseline.zhang", [ Alcotest.test_case "constants" `Quick test_zhang_constants ] );
  ]
