(* Tests for db_fixed: Q-format arithmetic and quantisation properties. *)

module Fixed = Db_fixed.Fixed

let q = Fixed.q16_8

let check_float = Alcotest.(check (float 1e-9))

let test_format_validation () =
  Alcotest.check_raises "frac >= total"
    (Invalid_argument "Fixed.format: frac_bits out of [0, total_bits)")
    (fun () -> ignore (Fixed.format ~total_bits:8 ~frac_bits:8));
  Alcotest.check_raises "too wide"
    (Invalid_argument "Fixed.format: total_bits out of [2, 32]") (fun () ->
      ignore (Fixed.format ~total_bits:33 ~frac_bits:4))

let test_ranges () =
  Alcotest.(check int) "max" 32767 (Fixed.max_value q);
  Alcotest.(check int) "min" (-32768) (Fixed.min_value q);
  check_float "resolution" (1.0 /. 256.0) (Fixed.resolution q);
  check_float "max float" (32767.0 /. 256.0) (Fixed.max_float q)

let test_roundtrip_simple () =
  check_float "1.5 exact" 1.5 (Fixed.to_float q (Fixed.of_float q 1.5));
  check_float "-0.25 exact" (-0.25) (Fixed.to_float q (Fixed.of_float q (-0.25)))

let test_rounding () =
  (* Values between representable points round to nearest. *)
  let lsb = Fixed.resolution q in
  let x = 3.0 +. (lsb *. 0.4) in
  check_float "rounds down" 3.0 (Fixed.to_float q (Fixed.of_float q x));
  let y = 3.0 +. (lsb *. 0.6) in
  check_float "rounds up" (3.0 +. lsb) (Fixed.to_float q (Fixed.of_float q y))

let test_saturation () =
  Alcotest.(check int) "positive sat" (Fixed.max_value q) (Fixed.of_float q 1e9);
  Alcotest.(check int) "negative sat" (Fixed.min_value q) (Fixed.of_float q (-1e9));
  Alcotest.(check int) "add sat" (Fixed.max_value q)
    (Fixed.add q (Fixed.max_value q) 1);
  Alcotest.(check int) "sub sat" (Fixed.min_value q)
    (Fixed.sub q (Fixed.min_value q) 1)

let test_nan_is_zero () = Alcotest.(check int) "nan" 0 (Fixed.of_float q Float.nan)

let test_mul_known () =
  let a = Fixed.of_float q 1.5 and b = Fixed.of_float q 2.0 in
  check_float "1.5 * 2" 3.0 (Fixed.to_float q (Fixed.mul q a b));
  let c = Fixed.of_float q (-0.5) in
  check_float "2 * -0.5" (-1.0) (Fixed.to_float q (Fixed.mul q b c))

let test_mul_saturates () =
  let big = Fixed.of_float q 100.0 in
  Alcotest.(check int) "100*100 saturates" (Fixed.max_value q)
    (Fixed.mul q big big)

let test_shift_right_approx () =
  let v = Fixed.of_float q 4.0 in
  check_float "div by 4" 1.0 (Fixed.to_float q (Fixed.shift_right_approx q v 2));
  (* Arithmetic shift preserves sign. *)
  let n = Fixed.of_float q (-4.0) in
  check_float "negative div" (-1.0) (Fixed.to_float q (Fixed.shift_right_approx q n 2))

let test_formats_stock () =
  List.iter
    (fun (fmt, expect) ->
      Alcotest.(check string)
        "pp" expect
        (Format.asprintf "%a" Fixed.pp_format fmt))
    [
      (Fixed.q16_8, "Q8.8");
      (Fixed.q8_4, "Q4.4");
      (Fixed.q24_12, "Q12.12");
      (Fixed.q32_16, "Q16.16");
    ]

let test_tensor_quantise () =
  let t = Db_tensor.Tensor.of_array (Db_tensor.Shape.vector 3) [| 0.5; -1.25; 300.0 |] in
  let qs = Fixed.quantize_tensor q t in
  let back = Fixed.dequantize_tensor q ~shape:(Db_tensor.Shape.vector 3) qs in
  check_float "0.5" 0.5 (Db_tensor.Tensor.get back 0);
  check_float "-1.25" (-1.25) (Db_tensor.Tensor.get back 1);
  check_float "saturated" (Fixed.max_float q) (Db_tensor.Tensor.get back 2)

(* qcheck properties *)

let in_range = QCheck.float_range (-100.0) 100.0

let prop_roundtrip_bound =
  QCheck.Test.make ~name:"quantisation error <= half LSB" ~count:500 in_range
    (fun x ->
      let err = Float.abs (Fixed.to_float q (Fixed.of_float q x) -. x) in
      err <= Fixed.roundtrip_error_bound q +. 1e-12)

let prop_add_matches_float =
  QCheck.Test.make ~name:"fixed add tracks float add" ~count:300
    QCheck.(pair (float_range (-50.0) 50.0) (float_range (-50.0) 50.0))
    (fun (x, y) ->
      let fx = Fixed.of_float q x and fy = Fixed.of_float q y in
      let sum = Fixed.to_float q (Fixed.add q fx fy) in
      Float.abs (sum -. (x +. y)) <= (2.0 *. Fixed.resolution q) +. 1e-12)

let prop_mul_error_bound =
  QCheck.Test.make ~name:"fixed mul tracks float mul" ~count:300
    QCheck.(pair (float_range (-8.0) 8.0) (float_range (-8.0) 8.0))
    (fun (x, y) ->
      let fx = Fixed.of_float q x and fy = Fixed.of_float q y in
      let p = Fixed.to_float q (Fixed.mul q fx fy) in
      (* Each operand carries <= LSB/2 error, products amplify by |x|,|y|. *)
      let bound =
        Fixed.resolution q
        *. (0.5 +. ((Float.abs x +. Float.abs y +. 1.0) /. 2.0))
      in
      Float.abs (p -. (x *. y)) <= bound +. 1e-9)

let prop_saturate_idempotent =
  QCheck.Test.make ~name:"saturate is idempotent" ~count:300 QCheck.int
    (fun v -> Fixed.saturate q (Fixed.saturate q v) = Fixed.saturate q v)

let prop_mul_commutative =
  QCheck.Test.make ~name:"fixed mul commutative" ~count:300
    QCheck.(pair small_int small_int)
    (fun (a, b) ->
      let a = Fixed.saturate q a and b = Fixed.saturate q b in
      Fixed.mul q a b = Fixed.mul q b a)

let suite =
  [
    ( "fixed.unit",
      [
        Alcotest.test_case "format validation" `Quick test_format_validation;
        Alcotest.test_case "ranges" `Quick test_ranges;
        Alcotest.test_case "round trip" `Quick test_roundtrip_simple;
        Alcotest.test_case "round to nearest" `Quick test_rounding;
        Alcotest.test_case "saturation" `Quick test_saturation;
        Alcotest.test_case "nan" `Quick test_nan_is_zero;
        Alcotest.test_case "multiply" `Quick test_mul_known;
        Alcotest.test_case "multiply saturates" `Quick test_mul_saturates;
        Alcotest.test_case "shifting latch" `Quick test_shift_right_approx;
        Alcotest.test_case "stock formats" `Quick test_formats_stock;
        Alcotest.test_case "tensor quantise" `Quick test_tensor_quantise;
      ] );
    ( "fixed.properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_roundtrip_bound;
          prop_add_matches_float;
          prop_mul_error_bound;
          prop_saturate_idempotent;
          prop_mul_commutative;
        ] );
  ]
