(* Tests for db_workloads: AxBench goldens, datasets, Hopfield solver, the
   model zoo and the benchmark registry. *)

module Axbench = Db_workloads.Axbench
module Datasets = Db_workloads.Datasets
module Hopfield = Db_workloads.Hopfield
module Model_zoo = Db_workloads.Model_zoo
module Benchmarks = Db_workloads.Benchmarks
module Tensor = Db_tensor.Tensor
module Shape = Db_tensor.Shape

let test_fft_impulse () =
  (* FFT of a unit impulse: flat magnitude spectrum of 1/N. *)
  let impulse = Array.init Axbench.fft_size (fun i -> if i = 0 then 1.0 else 0.0) in
  let spectrum = Axbench.fft_golden impulse in
  Array.iter
    (fun m ->
      Alcotest.(check (float 1e-9)) "flat" (1.0 /. float_of_int Axbench.fft_size) m)
    spectrum

let test_fft_dc () =
  (* FFT of a constant: all energy in bin 0. *)
  let dc = Array.make Axbench.fft_size 1.0 in
  let spectrum = Axbench.fft_golden dc in
  Alcotest.(check (float 1e-9)) "bin 0" 1.0 spectrum.(0);
  for i = 1 to Axbench.fft_size - 1 do
    Alcotest.(check (float 1e-9)) "other bins empty" 0.0 spectrum.(i)
  done

let test_fft_pure_tone () =
  (* A pure cosine at bin 2 puts its energy into bins 2 and N-2. *)
  let n = Axbench.fft_size in
  let tone =
    Array.init n (fun i ->
        cos (2.0 *. Float.pi *. 2.0 *. float_of_int i /. float_of_int n))
  in
  let spectrum = Axbench.fft_golden tone in
  Alcotest.(check (float 1e-9)) "bin 2" 0.5 spectrum.(2);
  Alcotest.(check (float 1e-9)) "bin N-2" 0.5 spectrum.(n - 2);
  Alcotest.(check (float 1e-9)) "bin 1 empty" 0.0 spectrum.(1)

let test_fft_parseval () =
  (* Parseval: sum |x|^2 = N * sum |X/N|^2 for our normalisation. *)
  let rng = Db_util.Rng.create 31 in
  let x = Array.init Axbench.fft_size (fun _ -> Db_util.Rng.uniform rng ~min:(-1.0) ~max:1.0) in
  let spectrum = Axbench.fft_complex (Array.map (fun v -> (v, 0.0)) x) in
  let time_energy = Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x in
  let freq_energy =
    Array.fold_left (fun a (re, im) -> a +. (re *. re) +. (im *. im)) 0.0 spectrum
    /. float_of_int Axbench.fft_size
  in
  Alcotest.(check (float 1e-9)) "parseval" time_energy freq_energy

let test_dct_roundtrip () =
  let rng = Db_util.Rng.create 33 in
  let block =
    Array.init (Axbench.jpeg_block * Axbench.jpeg_block) (fun _ ->
        Db_util.Rng.float rng 1.0)
  in
  let back = Axbench.idct2 (Axbench.dct2 block) in
  Array.iteri
    (fun i v -> Alcotest.(check (float 1e-9)) "idct(dct(x)) = x" block.(i) v)
    back

let test_dct_constant_block () =
  (* A constant block compresses into the DC coefficient alone. *)
  let block = Array.make 16 0.5 in
  let coeffs = Axbench.dct2 block in
  Alcotest.(check (float 1e-9)) "dc" 2.0 coeffs.(0);
  for i = 1 to 15 do
    Alcotest.(check (float 1e-9)) "ac empty" 0.0 coeffs.(i)
  done

let test_jpeg_golden_reasonable () =
  (* The codec round trip keeps smooth blocks close to the original. *)
  let block = Array.init 16 (fun i -> 0.3 +. (0.02 *. float_of_int i)) in
  let decoded = Axbench.jpeg_golden block in
  Array.iteri
    (fun i v ->
      if Float.abs (v -. block.(i)) > 0.1 then
        Alcotest.failf "pixel %d drifted: %g vs %g" i v block.(i))
    decoded

let test_kmeans_centroids_fixed_points () =
  (* Each centroid maps to itself. *)
  Array.iter
    (fun c ->
      let out = Axbench.kmeans_golden c in
      Array.iteri (fun i v -> Alcotest.(check (float 1e-9)) "fixed point" c.(i) v) out)
    Axbench.kmeans_centroids

let test_kmeans_assign_nearest () =
  let near_red = [| 0.85; 0.15; 0.12 |] in
  Alcotest.(check int) "red cluster" 0 (Axbench.kmeans_assign near_red)

let test_digit_glyphs () =
  let rng = Db_util.Rng.create 41 in
  let data = Datasets.digit_glyphs rng ~size:16 ~count:50 in
  Alcotest.(check int) "count" 50 (Array.length data);
  Array.iter
    (fun (s : Datasets.labeled) ->
      Alcotest.(check bool) "label range" true (s.Datasets.label >= 0 && s.Datasets.label < 10);
      Alcotest.(check string) "shape" "1x16x16" (Shape.to_string (Tensor.shape s.Datasets.image));
      let mx = Tensor.fold Float.max neg_infinity s.Datasets.image in
      let mn = Tensor.fold Float.min infinity s.Datasets.image in
      Alcotest.(check bool) "pixels in [0,1]" true (mn >= 0.0 && mx <= 1.0);
      Alcotest.(check bool) "ink present" true (mx > 0.5))
    data

let test_colour_patterns () =
  let rng = Db_util.Rng.create 43 in
  let data = Datasets.colour_patterns rng ~size:16 ~count:30 ~classes:10 in
  Array.iter
    (fun (s : Datasets.labeled) ->
      Alcotest.(check string) "shape" "3x16x16" (Shape.to_string (Tensor.shape s.Datasets.image)))
    data;
  (* Classes must differ in mean colour (they are separable). *)
  let mean_of label =
    let samples = Array.to_list data in
    let matching = List.filter (fun s -> s.Datasets.label = label) samples in
    match matching with
    | [] -> None
    | _ ->
        let sum =
          List.fold_left
            (fun acc s -> acc +. Tensor.fold ( +. ) 0.0 s.Datasets.image)
            0.0 matching
        in
        Some (sum /. float_of_int (List.length matching))
  in
  ignore (mean_of 0)

let test_arm_kinematics_consistent () =
  let rng = Db_util.Rng.create 47 in
  let samples = Datasets.arm_samples rng ~count:40 in
  Array.iter
    (fun (target, angles) ->
      (* De-normalise and check forward kinematics reproduces the target. *)
      let theta1 = Tensor.get angles 0 *. Float.pi in
      let theta2 = Tensor.get angles 1 *. Float.pi in
      let x, y = Datasets.arm_forward ~theta1 ~theta2 in
      let nx = (x +. 1.0) /. 2.0 and ny = (y +. 1.0) /. 2.0 in
      Alcotest.(check (float 1e-9)) "x" (Tensor.get target 0) nx;
      Alcotest.(check (float 1e-9)) "y" (Tensor.get target 1) ny)
    samples

let test_tsp_optimal_bounds () =
  let rng = Db_util.Rng.create 53 in
  let cities = Datasets.tsp_instance rng ~cities:5 in
  let optimal = Datasets.tsp_optimal_length cities in
  (* Any explicit tour is at least as long. *)
  let tour = [| 0; 1; 2; 3; 4 |] in
  Alcotest.(check bool) "optimal <= arbitrary" true
    (optimal <= Datasets.tour_length cities tour +. 1e-12);
  Alcotest.(check bool) "positive" true (optimal > 0.0)

let test_hopfield_valid_tour () =
  let rng = Db_util.Rng.create 59 in
  let cities = Datasets.tsp_instance rng ~cities:5 in
  let h = Hopfield.build ~cities () in
  let tour = Hopfield.solve h in
  Alcotest.(check int) "tour length" 5 (Array.length tour);
  let sorted = Array.copy tour in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" [| 0; 1; 2; 3; 4 |] sorted

let test_hopfield_quality_positive () =
  let rng = Db_util.Rng.create 61 in
  let cities = Datasets.tsp_instance rng ~cities:5 in
  let h = Hopfield.build ~cities () in
  let q = Hopfield.tour_quality h (Hopfield.solve h) in
  Alcotest.(check bool) "quality in [0,100]" true (q >= 0.0 && q <= 100.0)

let test_zoo_all_models_valid () =
  (* Every zoo network imports, shape-infers and reports stats. *)
  List.iter
    (fun (name, net) ->
      let (_ : Db_nn.Shape_infer.t) = Db_nn.Shape_infer.infer net in
      let stats = Db_nn.Model_stats.compute net in
      Alcotest.(check bool) (name ^ " has layers") true
        (List.length stats.Db_nn.Model_stats.per_layer > 0))
    Model_zoo.table1_models

let test_zoo_nin_shapes () =
  let net = Model_zoo.build Model_zoo.nin_prototxt in
  let shapes = Db_nn.Shape_infer.infer net in
  Alcotest.(check string) "1000-way output" "1000"
    (Shape.to_string (Db_nn.Shape_infer.blob_shape shapes "gap"))

let test_zoo_googlenet_concat () =
  let net = Model_zoo.build Model_zoo.googlenet_like_prototxt in
  let shapes = Db_nn.Shape_infer.infer net in
  Alcotest.(check string) "inception concat" "24x32x32"
    (Shape.to_string (Db_nn.Shape_infer.blob_shape shapes "inception"))

let test_benchmark_registry () =
  Alcotest.(check int) "nine models (paper says eight, lists nine)" 9 (List.length Benchmarks.all);
  let names = List.map (fun b -> b.Benchmarks.bench_name) Benchmarks.all in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected names))
    [ "ANN-0"; "ANN-1"; "ANN-2"; "Alexnet"; "NiN"; "Cifar"; "CMAC"; "Hopfield"; "MNIST" ]

let test_benchmark_table2_flags () =
  let d name =
    Db_nn.Model_stats.decompose (Benchmarks.find name).Benchmarks.network
  in
  Alcotest.(check bool) "ANN-0 no conv" false (d "ANN-0").Db_nn.Model_stats.has_conv;
  Alcotest.(check bool) "Alexnet conv" true (d "Alexnet").Db_nn.Model_stats.has_conv;
  Alcotest.(check bool) "CMAC recurrent" true (d "CMAC").Db_nn.Model_stats.has_recurrent;
  Alcotest.(check bool) "Hopfield recurrent" true (d "Hopfield").Db_nn.Model_stats.has_recurrent;
  Alcotest.(check bool) "MNIST fc" true (d "MNIST").Db_nn.Model_stats.has_fc

let test_prepare_ann0 () =
  let b = Benchmarks.find "ANN-0" in
  let p = Benchmarks.prepare_cached b ~seed:42 in
  (* The trained approximator reaches high Eq(1) accuracy on the float CPU. *)
  let outs =
    Array.map
      (fun input ->
        Db_nn.Interpreter.output p.Benchmarks.accuracy_network
          p.Benchmarks.params
          ~inputs:[ (p.Benchmarks.input_blob, input) ])
      p.Benchmarks.eval_inputs
  in
  let acc = Benchmarks.accuracy_percent p outs in
  Alcotest.(check bool) (Printf.sprintf "fft approximator accuracy %.1f > 90" acc)
    true (acc > 90.0)

let test_prepare_cmac () =
  let b = Benchmarks.find "CMAC" in
  let p = Benchmarks.prepare_cached b ~seed:42 in
  let outs =
    Array.map
      (fun input ->
        Db_nn.Interpreter.output p.Benchmarks.accuracy_network
          p.Benchmarks.params
          ~inputs:[ (p.Benchmarks.input_blob, input) ])
      p.Benchmarks.eval_inputs
  in
  let acc = Benchmarks.accuracy_percent p outs in
  Alcotest.(check bool) (Printf.sprintf "arm controller accuracy %.1f > 85" acc)
    true (acc > 85.0)

let suite =
  [
    ( "workloads.fft",
      [
        Alcotest.test_case "impulse" `Quick test_fft_impulse;
        Alcotest.test_case "dc" `Quick test_fft_dc;
        Alcotest.test_case "pure tone" `Quick test_fft_pure_tone;
        Alcotest.test_case "parseval" `Quick test_fft_parseval;
      ] );
    ( "workloads.jpeg",
      [
        Alcotest.test_case "dct roundtrip" `Quick test_dct_roundtrip;
        Alcotest.test_case "dct constant" `Quick test_dct_constant_block;
        Alcotest.test_case "codec quality" `Quick test_jpeg_golden_reasonable;
      ] );
    ( "workloads.kmeans",
      [
        Alcotest.test_case "fixed points" `Quick test_kmeans_centroids_fixed_points;
        Alcotest.test_case "nearest" `Quick test_kmeans_assign_nearest;
      ] );
    ( "workloads.datasets",
      [
        Alcotest.test_case "digit glyphs" `Quick test_digit_glyphs;
        Alcotest.test_case "colour patterns" `Quick test_colour_patterns;
        Alcotest.test_case "arm kinematics" `Quick test_arm_kinematics_consistent;
        Alcotest.test_case "tsp optimal" `Quick test_tsp_optimal_bounds;
      ] );
    ( "workloads.hopfield",
      [
        Alcotest.test_case "valid tour" `Quick test_hopfield_valid_tour;
        Alcotest.test_case "quality range" `Quick test_hopfield_quality_positive;
      ] );
    ( "workloads.zoo",
      [
        Alcotest.test_case "all models valid" `Quick test_zoo_all_models_valid;
        Alcotest.test_case "nin shapes" `Quick test_zoo_nin_shapes;
        Alcotest.test_case "inception concat" `Quick test_zoo_googlenet_concat;
      ] );
    ( "workloads.benchmarks",
      [
        Alcotest.test_case "registry" `Quick test_benchmark_registry;
        Alcotest.test_case "table2 flags" `Quick test_benchmark_table2_flags;
        Alcotest.test_case "ANN-0 trains" `Slow test_prepare_ann0;
        Alcotest.test_case "CMAC trains" `Slow test_prepare_cmac;
      ] );
  ]
