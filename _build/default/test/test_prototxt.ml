(* Tests for db_prototxt: lexer, parser, printer and the round trip. *)

module Ast = Db_prototxt.Ast
module Lexer = Db_prototxt.Lexer
module Parser = Db_prototxt.Parser
module Printer = Db_prototxt.Printer

let parse = Parser.parse

let test_scalar_fields () =
  let doc = parse {|name: "net" count: 42 rate: 0.5 kind: MAX flag: true|} in
  Alcotest.(check (option string)) "string" (Some "net") (Ast.opt_string doc "name");
  Alcotest.(check (option int)) "int" (Some 42) (Ast.opt_int doc "count");
  Alcotest.(check bool) "float" true (Ast.opt_float doc "rate" = Some 0.5);
  Alcotest.(check (option string)) "enum" (Some "MAX") (Ast.opt_enum doc "kind");
  Alcotest.(check (option string)) "bool as enum" (Some "true") (Ast.opt_enum doc "flag")

let test_nested_messages () =
  let doc =
    parse
      {|layers { name: "conv1" param { num_output: 20 kernel_size: 5 } }|}
  in
  match Ast.messages doc "layers" with
  | [ fields ] -> begin
      Alcotest.(check string) "name" "conv1" (Ast.find_string fields "name");
      match Ast.opt_message fields "param" with
      | Some p -> Alcotest.(check int) "nested int" 20 (Ast.find_int p "num_output")
      | None -> Alcotest.fail "missing param message"
    end
  | other -> Alcotest.failf "expected 1 layers block, got %d" (List.length other)

let test_repeated_fields () =
  let doc = parse {|m { bottom: "a" bottom: "b" dim: 1 dim: 2 dim: 3 }|} in
  match Ast.messages doc "m" with
  | [ fields ] ->
      Alcotest.(check (list string)) "bottoms" [ "a"; "b" ] (Ast.strings fields "bottom");
      Alcotest.(check (list int)) "dims" [ 1; 2; 3 ] (Ast.ints fields "dim")
  | _ -> Alcotest.fail "expected one message"

let test_comments_and_commas () =
  let doc = parse "# header comment\na: 1, b: 2 # trailing\nc: 3" in
  Alcotest.(check (option int)) "a" (Some 1) (Ast.opt_int doc "a");
  Alcotest.(check (option int)) "b" (Some 2) (Ast.opt_int doc "b");
  Alcotest.(check (option int)) "c" (Some 3) (Ast.opt_int doc "c")

let test_negative_and_scientific () =
  let doc = parse "a: -5 b: -0.25 c: 1e-3 d: 2.5E2" in
  Alcotest.(check (option int)) "neg int" (Some (-5)) (Ast.opt_int doc "a");
  Alcotest.(check bool) "neg float" true (Ast.opt_float doc "b" = Some (-0.25));
  Alcotest.(check bool) "sci" true (Ast.opt_float doc "c" = Some 0.001);
  Alcotest.(check bool) "sci upper" true (Ast.opt_float doc "d" = Some 250.0)

(* tiny substring check without extra deps *)
let astring_contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_error_unterminated_string () =
  match parse {|name: "oops|} with
  | (_ : Ast.document) -> Alcotest.fail "expected error"
  | exception Db_util.Error.Deepburning_error msg ->
      Alcotest.(check bool) "mentions string" true
        (astring_contains msg "unterminated string")

let test_error_missing_value () =
  match parse "a:" with
  | (_ : Ast.document) -> Alcotest.fail "expected error"
  | exception Db_util.Error.Deepburning_error msg ->
      Alcotest.(check bool) "mentions value" true (astring_contains msg "a value")

let test_error_unbalanced_brace () =
  match parse "m { a: 1" with
  | (_ : Ast.document) -> Alcotest.fail "expected error"
  | exception Db_util.Error.Deepburning_error msg ->
      Alcotest.(check bool) "mentions brace" true (astring_contains msg "'}'")

let test_error_position () =
  match parse "a: 1\nb: {" with
  | (_ : Ast.document) -> Alcotest.fail "expected error"
  | exception Db_util.Error.Deepburning_error msg ->
      Alcotest.(check bool) "line 2 reported" true (astring_contains msg "line 2")

let test_lexer_tokens () =
  let toks = Lexer.tokenize {|x: "s" { }|} in
  let kinds = List.map (fun (l : Lexer.located) -> l.Lexer.token) toks in
  Alcotest.(check int) "token count incl eof" 6 (List.length kinds)

let test_print_parse_roundtrip () =
  let doc =
    parse
      {|
name: "roundtrip"
layers {
  name: "conv1"
  type: CONVOLUTION
  bottom: "data"
  top: "conv1"
  convolution_param { num_output: 20 kernel_size: 5 stride: 1 }
}
layers { name: "relu1" type: RELU bottom: "conv1" top: "conv1b" }
|}
  in
  let printed = Printer.print doc in
  let reparsed = parse printed in
  Alcotest.(check bool) "documents equal" true (Ast.equal_document doc reparsed)

let test_print_float_reparses_as_float () =
  let doc = [ Ast.Scalar ("r", Ast.Float 2.0) ] in
  let reparsed = parse (Printer.print doc) in
  Alcotest.(check bool) "still a float" true (Ast.opt_float reparsed "r" = Some 2.0);
  (match Ast.opt_int reparsed "r" with
  | (_ : int option) -> Alcotest.fail "expected a type error"
  | exception Db_util.Error.Deepburning_error _ -> ())

let test_paper_fig4_script () =
  (* The exact flavour of script from Fig. 4 of the paper. *)
  let doc =
    parse
      {|
layers {
  name: "conv1"
  type: CONVOLUTION
  bottom: "data"
  top: "conv1"
  param { num_output: 20 kernel_size: 5 stride: 1}
  connect { name: "c2p1" direction: forward type: full_per_channel }
}
layers {
  name: "pool1"
  type: POOLING
  bottom: "conv1"
  top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layers {
  name: "relu1"
  type: RELU
  bottom: "ip1"
  top: "ip1b"
  connect { name: "p2f2" direction: recurrent type: file_specified }
}
|}
  in
  Alcotest.(check int) "three layers" 3 (List.length (Ast.messages doc "layers"))

(* Property: printing any generated document re-parses to an equal one. *)
let gen_value =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Ast.Int i) (int_range (-1000) 1000);
        map (fun f -> Ast.Float (Float.round (f *. 100.0) /. 100.0)) (float_range (-10.0) 10.0);
        map (fun s -> Ast.String s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
        map (fun s -> Ast.Enum ("E" ^ s)) (string_size ~gen:(char_range 'A' 'Z') (int_range 1 5));
        map (fun b -> Ast.Bool b) bool;
      ])

let gen_name =
  QCheck.Gen.(
    map (fun s -> "f" ^ s) (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)))

let rec gen_field depth =
  QCheck.Gen.(
    if depth = 0 then map2 (fun n v -> Ast.Scalar (n, v)) gen_name gen_value
    else
      frequency
        [
          (3, map2 (fun n v -> Ast.Scalar (n, v)) gen_name gen_value);
          ( 1,
            map2
              (fun n fields -> Ast.Message (n, fields))
              gen_name
              (list_size (int_range 0 4) (gen_field (depth - 1))) );
        ])

let gen_document = QCheck.Gen.list_size (QCheck.Gen.int_range 0 6) (gen_field 2)

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse round trip" ~count:100
    (QCheck.make gen_document) (fun doc ->
      Ast.equal_document doc (parse (Printer.print doc)))

let suite =
  [
    ( "prototxt.parse",
      [
        Alcotest.test_case "scalars" `Quick test_scalar_fields;
        Alcotest.test_case "nested" `Quick test_nested_messages;
        Alcotest.test_case "repeated" `Quick test_repeated_fields;
        Alcotest.test_case "comments" `Quick test_comments_and_commas;
        Alcotest.test_case "numbers" `Quick test_negative_and_scientific;
        Alcotest.test_case "lexer" `Quick test_lexer_tokens;
        Alcotest.test_case "paper Fig.4" `Quick test_paper_fig4_script;
      ] );
    ( "prototxt.errors",
      [
        Alcotest.test_case "unterminated string" `Quick test_error_unterminated_string;
        Alcotest.test_case "missing value" `Quick test_error_missing_value;
        Alcotest.test_case "unbalanced brace" `Quick test_error_unbalanced_brace;
        Alcotest.test_case "position" `Quick test_error_position;
      ] );
    ( "prototxt.roundtrip",
      [
        Alcotest.test_case "explicit" `Quick test_print_parse_roundtrip;
        Alcotest.test_case "float stays float" `Quick test_print_float_reparses_as_float;
        QCheck_alcotest.to_alcotest prop_roundtrip;
      ] );
  ]
