(* Tests for db_sim: the per-fold cost model, LUT-backed function
   evaluation and the whole-design simulator (timing + function). *)

module Simulator = Db_sim.Simulator
module Perf_model = Db_sim.Perf_model
module Constraints = Db_core.Constraints
module Generator = Db_core.Generator
module Design = Db_core.Design
module Tensor = Db_tensor.Tensor
module Shape = Db_tensor.Shape

let ann_net () =
  Db_workloads.Model_zoo.build
    (Db_workloads.Model_zoo.ann_prototxt ~name:"simnet" ~inputs:8 ~hidden1:16
       ~hidden2:16 ~outputs:4)

let design_of ?(dsp_cap = 4) net =
  Generator.generate (Constraints.with_dsp_cap Constraints.db_medium dsp_cap) net

let test_timing_basics () =
  let design = design_of (ann_net ()) in
  let report = Simulator.timing design in
  Alcotest.(check bool) "cycles positive" true (report.Simulator.total_cycles > 0);
  Alcotest.(check (float 1e-12)) "seconds = cycles * 10ns"
    (float_of_int report.Simulator.total_cycles *. 1e-8)
    report.Simulator.seconds;
  Alcotest.(check bool) "dram traffic" true (report.Simulator.dram_bytes > 0);
  Alcotest.(check bool) "energy positive" true (report.Simulator.energy_j > 0.0);
  (* One per-layer row per compute layer. *)
  Alcotest.(check int) "per-layer rows" 5 (List.length report.Simulator.per_layer)

let test_per_layer_sums_to_total () =
  let design = design_of (ann_net ()) in
  let report = Simulator.timing design in
  let sum =
    List.fold_left (fun acc l -> acc + l.Simulator.lr_cycles) 0 report.Simulator.per_layer
  in
  Alcotest.(check int) "sum" report.Simulator.total_cycles sum

let test_more_lanes_faster () =
  let net = Db_workloads.Model_zoo.build Db_workloads.Model_zoo.mnist_prototxt in
  let t cap = (Simulator.timing (design_of ~dsp_cap:cap net)).Simulator.seconds in
  let t2 = t 2 and t8 = t 8 in
  Alcotest.(check bool) (Printf.sprintf "8 lanes (%.2g) < 2 lanes (%.2g)" t8 t2)
    true (t8 < t2)

let test_fold_cost_overlap () =
  (* A fold's cycles are max(compute, memory) + overhead, not the sum. *)
  let design = design_of (ann_net ()) in
  let dp = design.Design.datapath in
  List.iter
    (fun p ->
      let c = Perf_model.fold_cost dp ~dram:Db_mem.Dram.zynq_ddr3 ~bytes_per_word:2 p in
      Alcotest.(check int) "overlap"
        (Stdlib.max c.Perf_model.compute_cycles c.Perf_model.memory_cycles
        + Perf_model.reconfiguration_overhead_cycles)
        c.Perf_model.fold_cycles)
    design.Design.program.Db_core.Compiler.programs

let test_functional_matches_quantized () =
  (* The simulator's functional path with fresh (large) LUTs matches the
     plain quantized interpreter closely. *)
  let net = ann_net () in
  let rng = Db_util.Rng.create 21 in
  let params = Db_nn.Params.init_xavier rng net in
  let design = design_of net in
  let input = Tensor.random_uniform rng (Shape.vector 8) ~min:(-1.0) ~max:1.0 in
  let sim_out = Simulator.functional_output design params ~inputs:[ ("data", input) ] in
  let q_out =
    Db_nn.Quantized.output ~fmt:design.Design.datapath.Db_sched.Datapath.fmt net
      params ~inputs:[ ("data", input) ]
  in
  Alcotest.(check bool) "close" true (Tensor.equal_approx ~tol:0.02 sim_out q_out)

let test_functional_tracks_float () =
  let net = ann_net () in
  let rng = Db_util.Rng.create 22 in
  let params = Db_nn.Params.init_xavier rng net in
  let design = design_of net in
  let input = Tensor.random_uniform rng (Shape.vector 8) ~min:(-1.0) ~max:1.0 in
  let sim_out = Simulator.functional_output design params ~inputs:[ ("data", input) ] in
  let float_out = Db_nn.Interpreter.output net params ~inputs:[ ("data", input) ] in
  Alcotest.(check bool) "within fixed-point noise" true
    (Tensor.l2_distance sim_out float_out < 0.1)

let test_lut_eval_uses_tables () =
  (* A deliberately coarse sigmoid LUT shows up as approximation error. *)
  let coarse = [ Db_blocks.Approx_lut.sigmoid ~entries:4 ] in
  let eval = Db_sim.Lut_eval.of_luts coarse in
  let exact = 1.0 /. (1.0 +. exp (-1.3)) in
  let approx = eval.Db_nn.Quantized.eval_activation Db_nn.Layer.Sigmoid 1.3 in
  Alcotest.(check bool) "coarse table differs from exact" true
    (Float.abs (approx -. exact) > 1e-4);
  (* ReLU stays exact regardless. *)
  Alcotest.(check (float 1e-12)) "relu exact" 1.3
    (eval.Db_nn.Quantized.eval_activation Db_nn.Layer.Relu 1.3)

let test_lut_eval_fallback () =
  let eval = Db_sim.Lut_eval.of_luts [] in
  Alcotest.(check (float 1e-12)) "tanh exact fallback" (Float.tanh 0.4)
    (eval.Db_nn.Quantized.eval_activation Db_nn.Layer.Tanh 0.4);
  Alcotest.(check (float 1e-12)) "recip fallback" 0.5
    (eval.Db_nn.Quantized.eval_reciprocal 2.0)

let test_run_returns_both () =
  let net = ann_net () in
  let rng = Db_util.Rng.create 23 in
  let params = Db_nn.Params.init_xavier rng net in
  let design = design_of net in
  let input = Tensor.random_uniform rng (Shape.vector 8) ~min:(-1.0) ~max:1.0 in
  let out, report = Simulator.run design params ~inputs:[ ("data", input) ] in
  Alcotest.(check int) "output size" 4 (Tensor.numel out);
  Alcotest.(check bool) "report present" true (report.Simulator.total_cycles > 0)

let test_slow_dram_slows_only_memory_bound () =
  let design = design_of (ann_net ()) in
  let fast = Simulator.timing design in
  let slow_dram =
    { Db_mem.Dram.zynq_ddr3 with Db_mem.Dram.peak_bytes_per_cycle = 0.5 }
  in
  let slow = Simulator.timing ~dram:slow_dram design in
  Alcotest.(check bool) "slower dram, slower or equal run" true
    (slow.Simulator.total_cycles >= fast.Simulator.total_cycles)

let suite =
  [
    ( "sim.timing",
      [
        Alcotest.test_case "basics" `Quick test_timing_basics;
        Alcotest.test_case "per-layer sums" `Quick test_per_layer_sums_to_total;
        Alcotest.test_case "lanes scale" `Quick test_more_lanes_faster;
        Alcotest.test_case "compute/memory overlap" `Quick test_fold_cost_overlap;
        Alcotest.test_case "dram sensitivity" `Quick test_slow_dram_slows_only_memory_bound;
      ] );
    ( "sim.function",
      [
        Alcotest.test_case "matches quantized" `Quick test_functional_matches_quantized;
        Alcotest.test_case "tracks float" `Quick test_functional_tracks_float;
        Alcotest.test_case "lut eval tables" `Quick test_lut_eval_uses_tables;
        Alcotest.test_case "lut eval fallback" `Quick test_lut_eval_fallback;
        Alcotest.test_case "run api" `Quick test_run_returns_both;
      ] );
  ]
