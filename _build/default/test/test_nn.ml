(* Tests for db_nn: network graph, shape inference, Caffe import/export,
   the float interpreter and the quantized interpreter. *)

module Shape = Db_tensor.Shape
module Tensor = Db_tensor.Tensor
module Network = Db_nn.Network
module Layer = Db_nn.Layer
module Params = Db_nn.Params
module Caffe = Db_nn.Caffe

let node name layer bottoms tops =
  { Network.node_name = name; layer; bottoms; tops }

let tiny_mlp () =
  Network.create ~name:"tiny"
    [
      node "in" (Layer.Input { shape = Shape.vector 2 }) [] [ "data" ];
      node "fc" (Layer.Inner_product { num_output = 3; bias = true }) [ "data" ] [ "h" ];
      node "act" (Layer.Activation Layer.Relu) [ "h" ] [ "out" ];
    ]

let test_create_and_order () =
  (* Nodes given out of order are topologically sorted. *)
  let net =
    Network.create ~name:"disorder"
      [
        node "act" (Layer.Activation Layer.Relu) [ "h" ] [ "out" ];
        node "fc" (Layer.Inner_product { num_output = 3; bias = true }) [ "data" ] [ "h" ];
        node "in" (Layer.Input { shape = Shape.vector 2 }) [] [ "data" ];
      ]
  in
  Alcotest.(check (list string))
    "topological order" [ "in"; "fc"; "act" ]
    (List.map (fun n -> n.Network.node_name) net.Network.nodes)

let expect_network_error nodes fragment =
  match Network.create ~name:"bad" nodes with
  | (_ : Network.t) -> Alcotest.failf "expected failure (%s)" fragment
  | exception Db_util.Error.Deepburning_error msg ->
      let contains =
        let nl = String.length fragment and hl = String.length msg in
        let rec go i = i + nl <= hl && (String.sub msg i nl = fragment || go (i + 1)) in
        go 0
      in
      if not contains then Alcotest.failf "error %S lacks %S" msg fragment

let test_validation_errors () =
  expect_network_error
    [
      node "in" (Layer.Input { shape = Shape.vector 2 }) [] [ "data" ];
      node "fc" (Layer.Inner_product { num_output = 3; bias = true }) [ "nope" ] [ "h" ];
    ]
    "unknown blob";
  expect_network_error
    [
      node "a" (Layer.Input { shape = Shape.vector 2 }) [] [ "data" ];
      node "a" (Layer.Activation Layer.Relu) [ "data" ] [ "out" ];
    ]
    "duplicate";
  expect_network_error
    [ node "fc" (Layer.Inner_product { num_output = 3; bias = true }) [] [ "h" ] ]
    "expects 1 bottom"

let test_output_blobs () =
  let net = tiny_mlp () in
  Alcotest.(check (list string)) "outputs" [ "out" ] (Network.output_blobs net);
  Alcotest.(check int) "layer count" 2 (Network.layer_count net)

let test_shape_inference_mlp () =
  let shapes = Db_nn.Shape_infer.infer (tiny_mlp ()) in
  Alcotest.(check string) "hidden" "3"
    (Shape.to_string (Db_nn.Shape_infer.blob_shape shapes "h"));
  Alcotest.(check string) "out" "3"
    (Shape.to_string (Db_nn.Shape_infer.blob_shape shapes "out"))

let test_shape_inference_cnn () =
  let net = Db_workloads.Model_zoo.build Db_workloads.Model_zoo.alexnet_prototxt in
  let shapes = Db_nn.Shape_infer.infer net in
  Alcotest.(check string) "conv1" "96x55x55"
    (Shape.to_string (Db_nn.Shape_infer.blob_shape shapes "conv1"));
  Alcotest.(check string) "pool1" "96x27x27"
    (Shape.to_string (Db_nn.Shape_infer.blob_shape shapes "pool1"));
  Alcotest.(check string) "conv2 grouped" "256x27x27"
    (Shape.to_string (Db_nn.Shape_infer.blob_shape shapes "conv2"));
  Alcotest.(check string) "pool5" "256x6x6"
    (Shape.to_string (Db_nn.Shape_infer.blob_shape shapes "pool5"));
  Alcotest.(check string) "fc8" "1000"
    (Shape.to_string (Db_nn.Shape_infer.blob_shape shapes "fc8"))

let test_params_shapes_and_count () =
  let net = tiny_mlp () in
  let rng = Db_util.Rng.create 1 in
  let params = Params.init_xavier rng net in
  Params.validate net params;
  Alcotest.(check int) "param count" ((3 * 2) + 3) (Params.count_parameters net params)

let test_params_validate_catches () =
  let net = tiny_mlp () in
  let params = Params.create () in
  Params.set params "fc" [ Tensor.create (Shape.of_list [ 4; 2 ]) ];
  match Params.validate net params with
  | () -> Alcotest.fail "expected shape mismatch"
  | exception Db_util.Error.Deepburning_error _ -> ()

let test_interpreter_fc () =
  let net = tiny_mlp () in
  let params = Params.create () in
  Params.set params "fc"
    [
      Tensor.of_array (Shape.of_list [ 3; 2 ]) [| 1.; 0.; 0.; 1.; -1.; -1. |];
      Tensor.of_array (Shape.vector 3) [| 0.0; 0.0; 0.5 |];
    ];
  let input = Tensor.of_array (Shape.vector 2) [| 2.0; 3.0 |] in
  let out = Db_nn.Interpreter.output net params ~inputs:[ ("data", input) ] in
  (* fc: [2; 3; -4.5], relu: [2; 3; 0] *)
  Alcotest.(check bool) "values" true
    (Tensor.equal_approx out (Tensor.of_array (Shape.vector 3) [| 2.0; 3.0; 0.0 |]))

let test_interpreter_recurrent_zero_feedback () =
  (* With w_rec = 0 the recurrent layer equals tanh(fc). *)
  let net =
    Network.create ~name:"rec"
      [
        node "in" (Layer.Input { shape = Shape.vector 2 }) [] [ "x" ];
        node "r" (Layer.Recurrent { num_output = 2; steps = 4; bias = false }) [ "x" ] [ "h" ];
      ]
  in
  let params = Params.create () in
  let w_in = Tensor.of_array (Shape.of_list [ 2; 2 ]) [| 1.; 0.; 0.; 1. |] in
  Params.set params "r" [ w_in; Tensor.create (Shape.of_list [ 2; 2 ]) ];
  let input = Tensor.of_array (Shape.vector 2) [| 0.5; -0.5 |] in
  let out = Db_nn.Interpreter.output net params ~inputs:[ ("x", input) ] in
  Alcotest.(check bool) "tanh identity" true
    (Tensor.equal_approx ~tol:1e-9 out
       (Tensor.of_array (Shape.vector 2) [| Float.tanh 0.5; Float.tanh (-0.5) |]))

let test_associative_encoding () =
  let input = Tensor.of_array (Shape.vector 1) [| 0.0 |] in
  let out = Db_nn.Interpreter.associative_encode ~cells_per_dim:8 ~active_cells:3 input in
  Alcotest.(check int) "size" 8 (Tensor.numel out);
  (* x = 0 hits cell 0; of the 3 centred cells only 0 and 1 are in range. *)
  Alcotest.(check bool) "cell 0 active" true (Tensor.get out 0 > 0.0);
  Alcotest.(check bool) "cell 1 active" true (Tensor.get out 1 > 0.0);
  Alcotest.(check bool) "cell 3 inactive" true (Tensor.get out 3 = 0.0)

let test_associative_sparsity () =
  let input = Tensor.of_array (Shape.vector 2) [| 0.5; 0.9 |] in
  let out =
    Db_nn.Interpreter.associative_encode ~cells_per_dim:16 ~active_cells:4 input
  in
  let active = Tensor.fold (fun acc x -> if x > 0.0 then acc + 1 else acc) 0 out in
  Alcotest.(check bool) "at most 2*4 active" true (active <= 8);
  Alcotest.(check bool) "at least 2 active" true (active >= 2)

let test_classifier_topk () =
  let net =
    Network.create ~name:"cls"
      [
        node "in" (Layer.Input { shape = Shape.vector 5 }) [] [ "scores" ];
        node "k" (Layer.Classifier { top_k = 3 }) [ "scores" ] [ "top" ];
      ]
  in
  let input = Tensor.of_array (Shape.vector 5) [| 0.1; 0.9; 0.3; 0.9; 0.0 |] in
  let out = Db_nn.Interpreter.output net (Params.create ()) ~inputs:[ ("scores", input) ] in
  (* Ties broken by lower index: 1 before 3. *)
  Alcotest.(check bool) "top3" true
    (Tensor.equal_approx out (Tensor.of_array (Shape.vector 3) [| 1.0; 3.0; 2.0 |]))

let test_caffe_import_roundtrip () =
  let net = Db_workloads.Model_zoo.build Db_workloads.Model_zoo.mnist_prototxt in
  let exported = Caffe.export_string net in
  let reimported = Caffe.import_string exported in
  Alcotest.(check int) "same node count"
    (List.length net.Network.nodes)
    (List.length reimported.Network.nodes);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "node name" a.Network.node_name b.Network.node_name;
      Alcotest.(check bool) "layer equal" true (Layer.equal a.Network.layer b.Network.layer))
    net.Network.nodes reimported.Network.nodes

let test_caffe_all_zoo_roundtrip () =
  List.iter
    (fun (name, net) ->
      let re = Caffe.import_string (Caffe.export_string net) in
      Alcotest.(check int) (name ^ " nodes")
        (List.length net.Network.nodes)
        (List.length re.Network.nodes))
    Db_workloads.Model_zoo.table1_models

let test_caffe_default_top () =
  (* Caffe's in-place convention: top defaults to the layer name. *)
  let net =
    Caffe.import_string
      {|
layers { name: "data" type: INPUT input_param { dim: 4 } }
layers { name: "fc" type: INNER_PRODUCT bottom: "data"
  inner_product_param { num_output: 2 } }
|}
  in
  let fc = Network.find_node net "fc" in
  Alcotest.(check (list string)) "top defaults" [ "fc" ] fc.Network.tops

let test_caffe_rejects_unknown_type () =
  match Caffe.import_string
          {|layers { name: "x" type: FROBNICATE top: "x" }|}
  with
  | (_ : Network.t) -> Alcotest.fail "expected unknown-type failure"
  | exception Db_util.Error.Deepburning_error _ -> ()

let test_model_stats_macs () =
  let net = tiny_mlp () in
  let stats = Db_nn.Model_stats.compute net in
  Alcotest.(check int) "fc macs" 6 stats.Db_nn.Model_stats.total_macs;
  Alcotest.(check int) "params" 9 stats.Db_nn.Model_stats.total_params

let test_model_stats_alexnet () =
  let net = Db_workloads.Model_zoo.build Db_workloads.Model_zoo.alexnet_prototxt in
  let stats = Db_nn.Model_stats.compute net in
  (* Published AlexNet numbers: ~0.7 GMAC forward, ~61 M parameters. *)
  let gmacs = float_of_int stats.Db_nn.Model_stats.total_macs /. 1e9 in
  if gmacs < 0.6 || gmacs > 0.8 then Alcotest.failf "AlexNet GMACs = %.3f" gmacs;
  let mparams = float_of_int stats.Db_nn.Model_stats.total_params /. 1e6 in
  if mparams < 55.0 || mparams > 65.0 then Alcotest.failf "AlexNet Mparams = %.1f" mparams

let test_decomposition_table1 () =
  let d net = Db_nn.Model_stats.decompose net in
  let mlp = d (Db_workloads.Model_zoo.build Db_workloads.Model_zoo.mlp_prototxt) in
  Alcotest.(check bool) "MLP no conv" false mlp.Db_nn.Model_stats.has_conv;
  Alcotest.(check bool) "MLP has fc" true mlp.Db_nn.Model_stats.has_fc;
  let alex = d (Db_workloads.Model_zoo.build Db_workloads.Model_zoo.alexnet_prototxt) in
  Alcotest.(check bool) "AlexNet conv" true alex.Db_nn.Model_stats.has_conv;
  Alcotest.(check bool) "AlexNet dropout" true alex.Db_nn.Model_stats.has_dropout;
  Alcotest.(check bool) "AlexNet lrn" true alex.Db_nn.Model_stats.has_lrn;
  let cmac = d (Db_workloads.Model_zoo.build Db_workloads.Model_zoo.cmac_prototxt) in
  Alcotest.(check bool) "CMAC associative" true cmac.Db_nn.Model_stats.has_associative;
  Alcotest.(check bool) "CMAC recurrent" true cmac.Db_nn.Model_stats.has_recurrent

let test_quantized_matches_float_mlp () =
  let net = tiny_mlp () in
  let rng = Db_util.Rng.create 5 in
  let params = Params.init_xavier rng net in
  let input = Tensor.random_uniform rng (Shape.vector 2) ~min:(-1.0) ~max:1.0 in
  let float_out = Db_nn.Interpreter.output net params ~inputs:[ ("data", input) ] in
  let fixed_out =
    Db_nn.Quantized.output ~fmt:Db_fixed.Fixed.q16_8 net params
      ~inputs:[ ("data", input) ]
  in
  Alcotest.(check bool) "within quantisation noise" true
    (Tensor.equal_approx ~tol:0.05 float_out fixed_out)

let test_quantized_wider_is_closer () =
  let net = Db_workloads.Model_zoo.build Db_workloads.Model_zoo.cifar_lite_prototxt in
  let rng = Db_util.Rng.create 9 in
  let params = Params.init_xavier rng net in
  let input =
    Tensor.random_uniform rng (Shape.chw ~channels:3 ~height:16 ~width:16)
      ~min:0.0 ~max:1.0
  in
  let float_out = Db_nn.Interpreter.output net params ~inputs:[ ("data", input) ] in
  let dist fmt =
    let q = Db_nn.Quantized.output ~fmt net params ~inputs:[ ("data", input) ] in
    Tensor.l2_distance float_out q
  in
  let wide = dist Db_fixed.Fixed.q24_12 and narrow = dist Db_fixed.Fixed.q8_4 in
  Alcotest.(check bool) "wider format is at least as close" true (wide <= narrow +. 1e-9)

let test_quantized_avg_pool_shift () =
  (* Power-of-two pooling area uses the exact shifting latch. *)
  let net =
    Network.create ~name:"pool"
      [
        node "in" (Layer.Input { shape = Shape.chw ~channels:1 ~height:2 ~width:2 }) [] [ "x" ];
        node "p"
          (Layer.Pooling { method_ = Layer.Average; kernel_size = 2; stride = 2 })
          [ "x" ] [ "y" ];
      ]
  in
  let input =
    Tensor.of_array (Shape.chw ~channels:1 ~height:2 ~width:2) [| 1.0; 2.0; 3.0; 4.0 |]
  in
  let out =
    Db_nn.Quantized.output ~fmt:Db_fixed.Fixed.q16_8 net (Params.create ())
      ~inputs:[ ("x", input) ]
  in
  Alcotest.(check (float 1e-6)) "exact mean" 2.5 (Tensor.get out 0)

let suite =
  [
    ( "nn.network",
      [
        Alcotest.test_case "topological sort" `Quick test_create_and_order;
        Alcotest.test_case "validation" `Quick test_validation_errors;
        Alcotest.test_case "outputs" `Quick test_output_blobs;
      ] );
    ( "nn.shapes",
      [
        Alcotest.test_case "mlp" `Quick test_shape_inference_mlp;
        Alcotest.test_case "alexnet" `Quick test_shape_inference_cnn;
      ] );
    ( "nn.params",
      [
        Alcotest.test_case "xavier init" `Quick test_params_shapes_and_count;
        Alcotest.test_case "validate" `Quick test_params_validate_catches;
      ] );
    ( "nn.interpreter",
      [
        Alcotest.test_case "fc+relu" `Quick test_interpreter_fc;
        Alcotest.test_case "recurrent" `Quick test_interpreter_recurrent_zero_feedback;
        Alcotest.test_case "associative" `Quick test_associative_encoding;
        Alcotest.test_case "associative sparsity" `Quick test_associative_sparsity;
        Alcotest.test_case "classifier top-k" `Quick test_classifier_topk;
      ] );
    ( "nn.caffe",
      [
        Alcotest.test_case "mnist roundtrip" `Quick test_caffe_import_roundtrip;
        Alcotest.test_case "zoo roundtrip" `Quick test_caffe_all_zoo_roundtrip;
        Alcotest.test_case "default top" `Quick test_caffe_default_top;
        Alcotest.test_case "unknown type" `Quick test_caffe_rejects_unknown_type;
      ] );
    ( "nn.stats",
      [
        Alcotest.test_case "tiny macs" `Quick test_model_stats_macs;
        Alcotest.test_case "alexnet macs/params" `Quick test_model_stats_alexnet;
        Alcotest.test_case "table1 decomposition" `Quick test_decomposition_table1;
      ] );
    ( "nn.quantized",
      [
        Alcotest.test_case "matches float" `Quick test_quantized_matches_float_mlp;
        Alcotest.test_case "wider closer" `Quick test_quantized_wider_is_closer;
        Alcotest.test_case "avg pool shift" `Quick test_quantized_avg_pool_shift;
      ] );
  ]

(* --- Builder (appended suite) ---------------------------------------------- *)

let test_builder_chain () =
  let net =
    Db_nn.Builder.(
      input (Shape.chw ~channels:1 ~height:16 ~width:16)
      |> conv ~num_output:8 ~kernel_size:5 ~pad:2
      |> relu
      |> max_pool ~kernel_size:2 ~stride:2
      |> lrn ~local_size:3
      |> fc ~num_output:10
      |> softmax
      |> build ~name:"built")
  in
  Alcotest.(check int) "layer count" 6 (Network.layer_count net);
  let shapes = Db_nn.Shape_infer.infer net in
  Alcotest.(check string) "output shape" "10"
    (Shape.to_string
       (Db_nn.Shape_infer.blob_shape shapes (List.hd (Network.output_blobs net))))

let test_builder_equivalent_to_import () =
  (* A builder network and the prototxt form of the same topology agree
     layer-for-layer. *)
  let built =
    Db_nn.Builder.(
      input (Shape.vector 4)
      |> fc ~num_output:8 |> sigmoid |> fc ~num_output:2
      |> build ~name:"b")
  in
  let imported =
    Caffe.import_string
      (Db_workloads.Model_zoo.ann_prototxt ~name:"b" ~inputs:4 ~hidden1:8
         ~hidden2:8 ~outputs:2)
  in
  (* Not identical (the prototxt has two hidden layers) — but both pass
     validation and generate. *)
  let gen net =
    Db_core.Generator.generate
      (Db_core.Constraints.with_dsp_cap Db_core.Constraints.db_medium 2)
      net
  in
  Alcotest.(check int) "built generates at 2 lanes" 2 (Db_core.Design.lanes (gen built));
  Alcotest.(check int) "imported generates at 2 lanes" 2 (Db_core.Design.lanes (gen imported))

let test_builder_recurrent_assoc () =
  let net =
    Db_nn.Builder.(
      input (Shape.vector 2)
      |> associative ~cells_per_dim:16 ~active_cells:3
      |> recurrent ~num_output:8 ~steps:2
      |> fc ~num_output:2 |> sigmoid
      |> build ~name:"cmacish")
  in
  let d = Db_nn.Model_stats.decompose net in
  Alcotest.(check bool) "associative" true d.Db_nn.Model_stats.has_associative;
  Alcotest.(check bool) "recurrent" true d.Db_nn.Model_stats.has_recurrent

let suite =
  suite
  @ [
      ( "nn.builder",
        [
          Alcotest.test_case "chain" `Quick test_builder_chain;
          Alcotest.test_case "generates" `Quick test_builder_equivalent_to_import;
          Alcotest.test_case "recurrent/assoc" `Quick test_builder_recurrent_assoc;
        ] );
    ]
