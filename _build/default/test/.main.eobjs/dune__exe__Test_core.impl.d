test/test_core.ml: Alcotest Db_blocks Db_core Db_fpga Db_hdl Db_mem Db_nn Db_sched Db_util Db_workloads List String
