test/test_fpga.ml: Alcotest Db_fpga QCheck QCheck_alcotest
