test/test_fixed.ml: Alcotest Db_fixed Db_tensor Float Format List QCheck QCheck_alcotest
