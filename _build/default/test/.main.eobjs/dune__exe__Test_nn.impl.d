test/test_nn.ml: Alcotest Db_core Db_fixed Db_nn Db_tensor Db_util Db_workloads Float List String
