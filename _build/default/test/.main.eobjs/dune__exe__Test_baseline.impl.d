test/test_baseline.ml: Alcotest Db_baseline Db_core Db_fpga Db_sim Db_workloads Printf
