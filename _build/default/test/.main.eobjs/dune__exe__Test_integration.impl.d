test/test_integration.ml: Alcotest Db_core Db_fpga Db_hdl Db_nn Db_report Db_sim Db_tensor Db_util Db_workloads Float List Printf String
