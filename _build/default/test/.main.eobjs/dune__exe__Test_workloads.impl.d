test/test_workloads.ml: Alcotest Array Db_nn Db_tensor Db_util Db_workloads Float List Printf
