test/test_sim.ml: Alcotest Db_blocks Db_core Db_mem Db_nn Db_sched Db_sim Db_tensor Db_util Db_workloads Float List Printf Stdlib
