test/test_sched.ml: Alcotest Db_hdl Db_nn Db_sched Db_tensor Db_util Db_workloads List QCheck QCheck_alcotest
