test/test_util.ml: Alcotest Array Db_util Float
