test/test_blocks.ml: Alcotest Db_blocks Db_fixed Db_fpga Db_hdl Db_util Float List QCheck QCheck_alcotest String
