test/test_tensor.ml: Alcotest Db_tensor Db_util Float Format List QCheck QCheck_alcotest
