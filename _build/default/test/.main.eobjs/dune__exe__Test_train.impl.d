test/test_train.ml: Alcotest Array Db_nn Db_tensor Db_train Db_util Float List Stdlib
