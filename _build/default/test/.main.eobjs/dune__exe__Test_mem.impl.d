test/test_mem.ml: Alcotest Array Db_hdl Db_mem Db_util Db_workloads Hashtbl List Printf QCheck QCheck_alcotest
