test/test_hdl.ml: Alcotest Db_hdl Db_util List Printf QCheck QCheck_alcotest String
