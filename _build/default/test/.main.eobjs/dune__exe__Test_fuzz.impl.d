test/test_fuzz.ml: Alcotest Db_core Db_fixed Db_fpga Db_nn Db_sched Db_sim Db_tensor Db_util Float Format List Printf QCheck QCheck_alcotest String Sys
