test/main.mli:
