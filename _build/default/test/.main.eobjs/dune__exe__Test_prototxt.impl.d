test/test_prototxt.ml: Alcotest Db_prototxt Db_util Float List QCheck QCheck_alcotest String
