exception Deepburning_error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Deepburning_error msg)) fmt

let failf_at ~component fmt =
  Format.kasprintf
    (fun msg -> raise (Deepburning_error (component ^ ": " ^ msg)))
    fmt
