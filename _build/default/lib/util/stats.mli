(** Small descriptive-statistics helpers used by the benchmark harness and
    the accuracy experiments. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val geomean : float array -> float
(** Geometric mean.  All elements must be positive. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]] with linear interpolation.
    Does not mutate its argument. *)

val min_max : float array -> float * float
(** Smallest and largest element. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val rel_distance_accuracy : golden:float array -> approx:float array -> float
(** Paper Eq. (1): [1 - (A-B)^2 / B^2] averaged over the output vector and
    expressed as a percentage, where [B] is the golden reference and [A] the
    approximation.  Clamped below at 0. *)
