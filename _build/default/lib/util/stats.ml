let sum xs =
  let total = ref 0.0 and comp = ref 0.0 in
  for i = 0 to Array.length xs - 1 do
    let y = xs.(i) -. !comp in
    let t = !total +. y in
    comp := t -. !total -. y;
    total := t
  done;
  !total

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty array";
  sum xs /. float_of_int (Array.length xs)

let stddev xs =
  let m = mean xs in
  let sq = Array.map (fun x -> (x -. m) *. (x -. m)) xs in
  sqrt (sum sq /. float_of_int (Array.length xs))

let geomean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geomean: empty array";
  let logs = Array.map (fun x -> assert (x > 0.0); log x) xs in
  exp (mean logs)

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  assert (p >= 0.0 && p <= 100.0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (mn, mx) x -> (Float.min mn x, Float.max mx x))
    (xs.(0), xs.(0))
    xs

let rel_distance_accuracy ~golden ~approx =
  if Array.length golden <> Array.length approx then
    invalid_arg "Stats.rel_distance_accuracy: length mismatch";
  if Array.length golden = 0 then invalid_arg "Stats.rel_distance_accuracy: empty";
  (* Eq. (1) of the paper, applied element-wise and averaged.  Near-zero
     golden elements would blow the relative error up, so the denominator is
     floored at the vector's mean energy: errors on small elements are then
     measured against the signal's own scale. *)
  let energy = mean (Array.map (fun b -> b *. b) golden) in
  let floor_sq = Float.max energy 1e-12 in
  let acc =
    Array.mapi
      (fun i b ->
        let a = approx.(i) in
        let denom = Float.max (b *. b) floor_sq in
        1.0 -. ((a -. b) *. (a -. b) /. denom))
      golden
  in
  Float.max 0.0 (mean acc *. 100.0)
