(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    experiment is reproducible bit-for-bit from a seed.  The generator is
    splitmix64, which is fast, has a 64-bit state and passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** Independent copy with identical state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the continuation of [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> min:float -> max:float -> float
(** Uniform in [\[min, max)]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via Box-Muller. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  The array must be non-empty. *)
