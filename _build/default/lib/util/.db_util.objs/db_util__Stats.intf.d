lib/util/stats.mli:
