lib/util/rng.mli:
