lib/util/error.ml: Format
