type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next_int64 t in
  { state = s }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's native int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random mantissa bits scaled into [0, bound). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let uniform t ~min ~max = min +. float t (max -. min)

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw ()
    else
      let u2 = float t 1.0 in
      mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
