(** Error reporting shared by the parser, the generator and the simulator. *)

exception Deepburning_error of string
(** Carried message already includes the failing component's context. *)

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Deepburning_error} with a formatted message. *)

val failf_at : component:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Like {!fail} but prefixes the component name, e.g. ["nn-gen: ..."]. *)
