(** Verilog-2001 text emission for {!Rtl.design} values.

    The output is what would be handed to Vivado for FPGA burning; in this
    reproduction it is written to disk and checked for structural
    well-formedness by the tests. *)

val emit_module : Rtl.module_decl -> string

val emit_design : Rtl.design -> string
(** All modules, top last, preceded by a generated-by header comment. *)

val write_design : Rtl.design -> path:string -> unit
