(** Lightweight structural linting of emitted Verilog text.

    Not a parser — a balance checker for the constructs the emitter and
    the block templates produce: [module]/[endmodule], [begin]/[end],
    [case]/[endcase], parentheses and brackets, plus a check that every
    non-empty source line inside a module is properly terminated.  Run
    over every generated design by the tests, it catches template
    regressions (a dropped [end], an unbalanced port list) without needing
    an external tool. *)

type issue = { line : int; message : string }

val check : string -> issue list
(** Empty when the text passes every check. *)

val assert_clean : string -> unit
(** Raises {!Db_util.Error.Deepburning_error} quoting the first issue. *)
