lib/hdl/fsm.mli: Rtl
