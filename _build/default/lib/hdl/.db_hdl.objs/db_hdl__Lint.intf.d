lib/hdl/lint.mli:
