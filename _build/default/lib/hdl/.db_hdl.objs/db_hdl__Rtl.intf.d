lib/hdl/rtl.mli:
