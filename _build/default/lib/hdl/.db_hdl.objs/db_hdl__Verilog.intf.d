lib/hdl/verilog.mli: Rtl
