lib/hdl/rtl.ml: Db_util Hashtbl List Printf String
