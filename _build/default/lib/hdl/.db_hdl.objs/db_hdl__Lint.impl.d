lib/hdl/lint.ml: Buffer Db_util List String
