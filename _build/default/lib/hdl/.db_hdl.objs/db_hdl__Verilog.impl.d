lib/hdl/verilog.ml: Buffer List Printf Rtl String
