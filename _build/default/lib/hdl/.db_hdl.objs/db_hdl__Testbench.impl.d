lib/hdl/testbench.ml: Buffer List Printf
