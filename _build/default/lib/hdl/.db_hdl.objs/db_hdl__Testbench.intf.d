lib/hdl/testbench.mli:
