lib/hdl/fsm.ml: Db_util Hashtbl List Option Printf Rtl Stdlib String
