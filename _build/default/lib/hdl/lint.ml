type issue = { line : int; message : string }

(* Count keyword occurrences as whole words, outside comments/strings. *)
let strip_comments_and_strings line =
  let buf = Buffer.create (String.length line) in
  let n = String.length line in
  let rec go i in_string =
    if i >= n then ()
    else if in_string then begin
      if line.[i] = '"' then go (i + 1) false else go (i + 1) true
    end
    else if i + 1 < n && line.[i] = '/' && line.[i + 1] = '/' then ()
    else if line.[i] = '"' then begin
      Buffer.add_char buf ' ';
      go (i + 1) true
    end
    else begin
      Buffer.add_char buf line.[i];
      go (i + 1) false
    end
  in
  go 0 false;
  Buffer.contents buf

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_'

let count_word line word =
  let n = String.length line and wl = String.length word in
  let rec go i acc =
    if i + wl > n then acc
    else if
      String.sub line i wl = word
      && (i = 0 || not (is_word_char line.[i - 1]))
      && (i + wl = n || not (is_word_char line.[i + wl]))
    then go (i + wl) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let check text =
  let issues = ref [] in
  let report line message = issues := { line; message } :: !issues in
  let modules = ref 0
  and begins = ref 0
  and cases = ref 0
  and parens = ref 0
  and brackets = ref 0 in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun idx raw ->
      let line_no = idx + 1 in
      let line = strip_comments_and_strings raw in
      modules := !modules + count_word line "module" - count_word line "endmodule";
      (* "endcase" contains no "case" word-match; count both separately. *)
      cases := !cases + count_word line "case" - count_word line "endcase";
      (* Whole-word matching keeps "endmodule"/"endcase" from counting as
         "end". *)
      begins := !begins + count_word line "begin" - count_word line "end";
      String.iter
        (fun c ->
          match c with
          | '(' -> incr parens
          | ')' -> decr parens
          | '[' -> incr brackets
          | ']' -> decr brackets
          | _ -> ())
        line;
      if !parens < 0 then begin
        report line_no "unbalanced ')'";
        parens := 0
      end;
      if !brackets < 0 then begin
        report line_no "unbalanced ']'";
        brackets := 0
      end;
      if !modules < 0 then begin
        report line_no "endmodule without module";
        modules := 0
      end)
    lines;
  let final = List.length lines in
  if !modules <> 0 then report final "module/endmodule imbalance";
  if !begins <> 0 then report final "begin/end imbalance";
  if !cases <> 0 then report final "case/endcase imbalance";
  if !parens <> 0 then report final "parenthesis imbalance";
  if !brackets <> 0 then report final "bracket imbalance";
  List.rev !issues

let assert_clean text =
  match check text with
  | [] -> ()
  | { line; message } :: rest ->
      Db_util.Error.failf_at ~component:"verilog-lint"
        "%d issue(s); first at line %d: %s" (1 + List.length rest) line message
