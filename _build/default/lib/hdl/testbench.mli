(** Verilog testbench generation.

    The paper verifies each generated accelerator by RTL simulation of the
    forward propagation in Vivado.  This module emits a self-checking
    testbench for a design's top module: clock and reset generation, a
    start pulse, stimulus words driven onto the AXI read-data port, and
    expected result words checked against the write-data port, with a
    cycle watchdog.  Inputs and expected outputs come from the OCaml
    simulator, so a user with a real simulator can replay our run. *)

type stimulus = {
  input_words : int list;  (** datapath words streamed to the DUT *)
  expected_words : int list;  (** words the DUT must eventually write *)
  word_bits : int;
  watchdog_cycles : int;  (** simulation aborts (and fails) after this *)
}

val generate : top:string -> stimulus -> string
(** The testbench Verilog text ([<top>_tb] module).  The DUT's ports must
    follow the generator's top-level convention (clk, rst, start,
    m_axi_rdata, m_axi_wdata, done). *)

val write : top:string -> stimulus -> path:string -> unit
