type direction = Input | Output

type port = { port_name : string; direction : direction; width : int }

type net = { net_name : string; net_width : int }

type instance = {
  inst_name : string;
  module_ref : string;
  parameters : (string * int) list;
  connections : (string * string) list;
}

type body =
  | Behavioral of string list
  | Structural of {
      nets : net list;
      instances : instance list;
      assigns : (string * string) list;
    }

type module_decl = {
  mod_name : string;
  ports : port list;
  localparams : (string * int) list;
  body : body;
}

type design = { top : string; modules : module_decl list }

let fail fmt = Db_util.Error.failf_at ~component:"rtl" fmt

let find_module design name =
  List.find (fun m -> m.mod_name = name) design.modules

let is_identifier s =
  s <> ""
  && (let ok = ref true in
      String.iteri
        (fun i c ->
          let alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' in
          let digit = c >= '0' && c <= '9' in
          if i = 0 then begin if not alpha then ok := false end
          else if not (alpha || digit) then ok := false)
        s;
      !ok)

let validate design =
  let names = List.map (fun m -> m.mod_name) design.modules in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem tbl n then fail "duplicate module %S" n
      else Hashtbl.add tbl n ())
    names;
  if not (Hashtbl.mem tbl design.top) then
    fail "top module %S is not declared" design.top;
  List.iter
    (fun m ->
      match m.body with
      | Behavioral _ -> ()
      | Structural { nets; instances; assigns } ->
          let known = Hashtbl.create 64 in
          List.iter (fun p -> Hashtbl.replace known p.port_name ()) m.ports;
          List.iter (fun n -> Hashtbl.replace known n.net_name ()) nets;
          let check_actual context actual =
            (* Expressions (slices, concatenations, literals) are accepted
               as-is; only bare identifiers are checked against the
               declared nets. *)
            if is_identifier actual && not (Hashtbl.mem known actual) then
              fail "module %S, %s: unknown net %S" m.mod_name context actual
          in
          List.iter
            (fun inst ->
              let callee =
                try find_module design inst.module_ref
                with Not_found ->
                  fail "module %S instantiates undeclared module %S"
                    m.mod_name inst.module_ref
              in
              List.iter
                (fun (formal, actual) ->
                  if
                    not
                      (List.exists (fun p -> p.port_name = formal) callee.ports)
                  then
                    fail "instance %S: module %S has no port %S"
                      inst.inst_name inst.module_ref formal;
                  check_actual
                    (Printf.sprintf "instance %S port %S" inst.inst_name formal)
                    actual)
                inst.connections)
            instances;
          List.iter
            (fun (lhs, _rhs) -> check_actual "assign" lhs)
            assigns)
    design.modules

let instances_of design name =
  match (find_module design name).body with
  | Behavioral _ -> []
  | Structural { instances; _ } -> instances

let count_instances design ~module_prefix =
  List.fold_left
    (fun acc m ->
      match m.body with
      | Behavioral _ -> acc
      | Structural { instances; _ } ->
          acc
          + List.length
              (List.filter
                 (fun i ->
                   String.length i.module_ref >= String.length module_prefix
                   && String.sub i.module_ref 0 (String.length module_prefix)
                      = module_prefix)
                 instances))
    0 design.modules
