(** Off-chip DDR3 model.

    The board's 2 GB DDR3 is reached through AXI; what the accelerator
    observes is a peak word rate plus a penalty for non-sequential access
    (row-buffer misses).  Transfer-time estimation is in accelerator clock
    cycles so it composes directly with the compute model. *)

type t = {
  dram_name : string;
  peak_bytes_per_cycle : float;
      (** at the accelerator clock; e.g. ~ 32 B/cycle for a 64-bit DDR3-1066
          behind AXI at 100 MHz *)
  sequential_efficiency : float;  (** fraction of peak for unit-stride bursts *)
  random_efficiency : float;  (** fraction of peak for isolated accesses *)
  base_latency_cycles : int;  (** fixed request latency *)
}

val zynq_ddr3 : t

val transfer_cycles : t -> bytes:int -> sequential_fraction:float -> int
(** Cycles to move [bytes] with the given access locality (linear
    interpolation between random and sequential efficiency). *)

val pattern_cycles : t -> bytes_per_word:int -> Access_pattern.t -> int
(** Cycles for one trigger of an AGU pattern against this DRAM. *)

val bandwidth_gbps : t -> clock_mhz:float -> float
(** Effective peak bandwidth in GB/s, for reports. *)
