module Shape = Db_tensor.Shape
module Network = Db_nn.Network
module Layer = Db_nn.Layer

type entry = {
  entry_name : string;
  base : int;
  words : int;
  tile_plan : Tiling.plan option;
}

type t = {
  entries : entry list;
  total_words : int;
  bytes_per_word : int;
  port_width : int;
}

(* The tile plan of a blob follows its consumer: the first convolution (or
   pooling window) that reads it decides the kernel/stride of Method-1. *)
let consumer_plan net ~port_width blob shape =
  if Shape.rank shape <> 3 then None
  else begin
    let consumer =
      List.find_opt
        (fun node -> List.mem blob node.Network.bottoms)
        net.Network.nodes
    in
    match consumer with
    | Some { Network.layer = Layer.Convolution { kernel_size; stride; _ }; _ } ->
        Some
          (Tiling.decide
             {
               Tiling.kernel = kernel_size;
               stride;
               port_width;
               map_count = Shape.channels shape;
             })
    | Some { Network.layer = Layer.Pooling { kernel_size; stride; _ }; _ } ->
        Some
          (Tiling.decide
             {
               Tiling.kernel = kernel_size;
               stride;
               port_width;
               map_count = Shape.channels shape;
             })
    | Some _ | None -> None
  end

let build ?(bytes_per_word = 2) ~port_width net =
  let shapes = Db_nn.Shape_infer.infer net in
  let next = ref 0 in
  let entries = ref [] in
  let alloc name words tile_plan =
    let e = { entry_name = name; base = !next; words; tile_plan } in
    next := !next + words;
    entries := e :: !entries
  in
  (* Feature blobs in production order. *)
  List.iter
    (fun (blob, shape) ->
      alloc ("feature:" ^ blob) (Shape.numel shape)
        (consumer_plan net ~port_width blob shape))
    (Db_nn.Shape_infer.all_blobs shapes);
  (* Weight tensors, per node. *)
  Network.iter net (fun node ->
      match node.Network.bottoms with
      | [ bottom ] ->
          let bshape = Db_nn.Shape_infer.blob_shape shapes bottom in
          List.iteri
            (fun i shape ->
              alloc
                (Printf.sprintf "weights:%s:%d" node.Network.node_name i)
                (Shape.numel shape) None)
            (Db_nn.Params.expected_shapes node.Network.layer ~bottom:bshape)
      | [] | _ :: _ :: _ -> ());
  {
    entries = List.rev !entries;
    total_words = !next;
    bytes_per_word;
    port_width;
  }

let find t name = List.find (fun e -> e.entry_name = name) t.entries

let feature_entry t ~blob = find t ("feature:" ^ blob)

let weight_entries t ~node =
  let prefix = "weights:" ^ node ^ ":" in
  List.filter
    (fun e ->
      String.length e.entry_name > String.length prefix
      && String.sub e.entry_name 0 (String.length prefix) = prefix)
    t.entries

let total_bytes t = t.total_words * t.bytes_per_word

let pp fmt t =
  Format.fprintf fmt "layout (%d words, %d B/word):@." t.total_words
    t.bytes_per_word;
  List.iter
    (fun e ->
      Format.fprintf fmt "  %-32s @%-10d %8d words%s@." e.entry_name e.base
        e.words
        (match e.tile_plan with
        | None -> ""
        | Some p -> Printf.sprintf "  tiled %dx%d" p.Tiling.tile p.Tiling.tile))
    t.entries
