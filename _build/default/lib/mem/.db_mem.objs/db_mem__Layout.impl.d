lib/mem/layout.ml: Db_nn Db_tensor Format List Printf String Tiling
