lib/mem/dram.mli: Access_pattern
