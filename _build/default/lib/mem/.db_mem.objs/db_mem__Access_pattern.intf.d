lib/mem/access_pattern.mli: Db_hdl Seq
