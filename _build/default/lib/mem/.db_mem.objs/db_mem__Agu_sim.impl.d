lib/mem/agu_sim.ml: Access_pattern Db_util List
