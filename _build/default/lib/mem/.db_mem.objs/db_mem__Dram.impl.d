lib/mem/dram.ml: Access_pattern Float
