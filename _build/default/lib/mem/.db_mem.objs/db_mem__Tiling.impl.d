lib/mem/tiling.ml: Array Stdlib
