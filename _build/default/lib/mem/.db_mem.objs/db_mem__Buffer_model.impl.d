lib/mem/buffer_model.ml: Option
