lib/mem/tiling.mli:
