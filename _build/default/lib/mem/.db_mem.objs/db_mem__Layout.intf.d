lib/mem/layout.mli: Db_nn Format Tiling
