lib/mem/buffer_model.mli:
