lib/mem/access_pattern.ml: Db_hdl Db_util List Seq
