lib/mem/agu_sim.mli: Access_pattern
