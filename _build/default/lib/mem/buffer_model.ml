type t = {
  buffer_name : string;
  capacity_words : int;
  read_words_per_cycle : int;
  write_words_per_cycle : int;
}

let make ~name ~capacity_words ~read_words_per_cycle ?write_words_per_cycle () =
  if capacity_words <= 0 then invalid_arg "Buffer_model.make: capacity";
  if read_words_per_cycle <= 0 then invalid_arg "Buffer_model.make: read width";
  let write_words_per_cycle =
    Option.value ~default:read_words_per_cycle write_words_per_cycle
  in
  if write_words_per_cycle <= 0 then invalid_arg "Buffer_model.make: write width";
  { buffer_name = name; capacity_words; read_words_per_cycle; write_words_per_cycle }

let bram_bits t ~bytes_per_word = t.capacity_words * bytes_per_word * 8

let div_ceil a b = (a + b - 1) / b

let read_cycles t ~words =
  if words < 0 then invalid_arg "Buffer_model.read_cycles: negative";
  div_ceil words t.read_words_per_cycle

let write_cycles t ~words =
  if words < 0 then invalid_arg "Buffer_model.write_cycles: negative";
  div_ceil words t.write_words_per_cycle

let holds t ~words = words <= t.capacity_words
