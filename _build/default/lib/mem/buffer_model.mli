(** On-chip BRAM buffer model.

    The generated accelerator has (at least) a feature buffer and a weight
    buffer (Fig. 2).  A buffer is characterised by its capacity, its
    read-port width (words per cycle it can feed the datapath) and its
    write-port width (words per cycle it accepts from the main AGU). *)

type t = {
  buffer_name : string;
  capacity_words : int;
  read_words_per_cycle : int;
  write_words_per_cycle : int;
}

val make :
  name:string ->
  capacity_words:int ->
  read_words_per_cycle:int ->
  ?write_words_per_cycle:int ->
  unit ->
  t
(** [write_words_per_cycle] defaults to the read width. *)

val bram_bits : t -> bytes_per_word:int -> int
(** BRAM bits this buffer occupies. *)

val read_cycles : t -> words:int -> int

val write_cycles : t -> words:int -> int

val holds : t -> words:int -> bool
(** Whether a working set fits entirely. *)
