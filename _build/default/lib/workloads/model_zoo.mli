(** The model zoo: every network the paper mentions, written as
    Caffe-compatible descriptive scripts (so the whole flow — parser,
    importer, generator — is exercised for each) plus builders.

    Covers Table 1's decomposition set (MLP, Hopfield, CMAC, AlexNet,
    MNIST, a GoogleNet-style inception net) and Table 2's benchmark set
    (ANN-0/1/2, AlexNet, NiN, Cifar, CMAC, Hopfield, MNIST). *)

val ann_prototxt :
  name:string -> inputs:int -> hidden1:int -> hidden2:int -> outputs:int -> string
(** A 4-layer ANN (two sigmoid hidden layers) as used for the AxBench
    approximators. *)

val mlp_prototxt : string
(** The basic 3-layer MLP of Table 1. *)

val cmac_prototxt : string
(** Tile-coding associative layer, a recurrent smoothing layer and a
    sigmoid output head for the 2-link-arm controller. *)

val cmac_surrogate_prototxt : string
(** The trainable stand-in for {!cmac_prototxt}: the recurrent layer
    replaced by FC+tanh (identical function when the recurrent feedback
    weights are zero); used to fit the weights, which are then
    transplanted. *)

val mnist_prototxt : string
(** The 5-layer MNIST CNN (conv/pool/LRN/conv/pool/FC + softmax) on
    16x16 synthetic glyphs. *)

val cifar_prototxt : string
(** Caffe cifar10_quick-style CNN at the full 3x32x32 input. *)

val cifar_lite_prototxt : string
(** Same layer classes at 3x16x16 — small enough to train in-process. *)

val alexnet_prototxt : string
(** Full AlexNet (227x227, grouped conv2/4/5, LRN, dropout, 1000-way). *)

val nin_prototxt : string
(** Network-in-Network (ImageNet variant: mlpconv stacks + global average
    pooling). *)

val googlenet_like_prototxt : string
(** A compact inception-style network (three parallel conv branches +
    channel concat) standing in for GoogleNet in Table 1. *)

val lenet5_prototxt : string
(** The classic LeNet-5 (1x32x32, tanh, average pooling) — the paper's
    introduction cites it as one of the networks prior FPGA work targets. *)

val vgg16_prototxt : string
(** VGG-16 at 3x224x224: a post-paper deep CNN exercising the generator at
    15.5 GMAC scale (no new layer classes needed — the point of the
    component library). *)

val hopfield_prototxt : cities:int -> string
(** The Hopfield TSP network's script form (weights are built
    programmatically by {!Hopfield.build}). *)

val build : string -> Db_nn.Network.t
(** Import a prototxt string (thin wrapper over {!Db_nn.Caffe}). *)

val table1_models : (string * Db_nn.Network.t) list
(** Name/network pairs in the column order of Table 1. *)
