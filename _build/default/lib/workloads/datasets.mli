(** Synthetic dataset generators.

    The paper trains on MNIST/Cifar/ImageNet; those sets are not shipped
    here, so structurally similar synthetic data exercises the same code
    paths: parametric digit glyphs for the MNIST-class CNN, colour/texture
    patterns for the Cifar-class CNN, two-link-arm inverse kinematics for
    CMAC, and random city tours for the Hopfield TSP solver. *)

type labeled = { image : Db_tensor.Tensor.t; label : int }

val digit_glyphs :
  Db_util.Rng.t -> size:int -> count:int -> labeled array
(** [size x size] single-channel images of 10 stroke-based digit-like
    glyph classes with jitter and noise. *)

val colour_patterns :
  Db_util.Rng.t -> size:int -> count:int -> classes:int -> labeled array
(** 3-channel images of [classes] colour/texture families (Cifar stand-in). *)

val arm_samples :
  Db_util.Rng.t -> count:int -> (Db_tensor.Tensor.t * Db_tensor.Tensor.t) array
(** (target position, joint angles): inverse kinematics of a 2-link planar
    arm with link lengths 0.5/0.5, targets inside the reachable annulus.
    Both are normalised to [0, 1] so CMAC tile coding applies directly. *)

val arm_forward : theta1:float -> theta2:float -> float * float
(** Forward kinematics (for checking the learned controller). *)

val tsp_instance : Db_util.Rng.t -> cities:int -> float array array
(** Random city coordinates in the unit square. *)

val tsp_optimal_length : float array array -> float
(** Brute-force shortest tour (cities <= 8). *)

val tour_length : float array array -> int array -> float
