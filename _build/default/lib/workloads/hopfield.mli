(** Hopfield-Tank TSP solver (the paper's 2-layer Hopfield benchmark).

    An [n]-city tour is encoded in [n * n] neurons V(city, position); the
    recurrent weight matrix carries the classic constraint penalties (one
    city per position, one position per city) plus the distance term; the
    network relaxes under the tanh dynamics of {!Db_nn.Layer.Recurrent}
    and the final activations are decoded greedily into a valid tour. *)

type t = {
  cities : float array array;
  network : Db_nn.Network.t;
  params : Db_nn.Params.t;
  input : Db_tensor.Tensor.t;  (** constant bias currents *)
}

val build : ?steps:int -> cities:float array array -> unit -> t
(** Default 60 relaxation steps. *)

val input_blob : string
(** Name of the network's input blob ("bias"). *)

val decode_tour : t -> Db_tensor.Tensor.t -> int array
(** Greedy decoding of the activation matrix into a permutation: for each
    position pick the strongest not-yet-used city. *)

val solve : t -> int array
(** Run the float network and decode. *)

val tour_quality : t -> int array -> float
(** Eq. (1)-style accuracy of the tour length against the brute-force
    optimum, as a percentage. *)
