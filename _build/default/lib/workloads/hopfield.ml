module Tensor = Db_tensor.Tensor
module Shape = Db_tensor.Shape
module Network = Db_nn.Network
module Layer = Db_nn.Layer
module Params = Db_nn.Params

type t = {
  cities : float array array;
  network : Network.t;
  params : Params.t;
  input : Tensor.t;
}

let input_blob = "bias"

(* Hopfield-Tank penalty coefficients, scaled down so the tanh iteration
   of the Recurrent layer contracts instead of oscillating. *)
let coeff_row = 1.2    (* one city per position *)
let coeff_col = 1.2    (* one position per city *)
let coeff_dist = 0.9
let bias_current = 1.1

let dist a b =
  let dx = a.(0) -. b.(0) and dy = a.(1) -. b.(1) in
  sqrt ((dx *. dx) +. (dy *. dy))

let build ?(steps = 60) ~cities () =
  let n = Array.length cities in
  if n < 3 then invalid_arg "Hopfield.build: need at least 3 cities";
  let units = n * n in
  let idx city pos = (city * n) + pos in
  let w_rec = Tensor.create (Shape.of_list [ units; units ]) in
  for x = 0 to n - 1 do
    for i = 0 to n - 1 do
      for y = 0 to n - 1 do
        for j = 0 to n - 1 do
          let v = ref 0.0 in
          if x = y && i <> j then v := !v -. coeff_row;
          if i = j && x <> y then v := !v -. coeff_col;
          if x <> y && (j = (i + 1) mod n || j = (i + n - 1) mod n) then
            v := !v -. (coeff_dist *. dist cities.(x) cities.(y));
          Tensor.set w_rec ((idx x i * units) + idx y j) !v
        done
      done
    done
  done;
  (* w_in is the identity: the external bias current enters untouched. *)
  let w_in =
    Tensor.init (Shape.of_list [ units; units ]) (fun k ->
        if k / units = k mod units then 1.0 else 0.0)
  in
  let nodes =
    [
      {
        Network.node_name = "bias_in";
        layer = Layer.Input { shape = Shape.vector units };
        bottoms = [];
        tops = [ input_blob ];
      };
      {
        Network.node_name = "relax";
        layer = Layer.Recurrent { num_output = units; steps; bias = false };
        bottoms = [ input_blob ];
        tops = [ "state" ];
      };
    ]
  in
  let network = Network.create ~name:"hopfield-tsp" nodes in
  let params = Params.create () in
  Params.set params "relax" [ w_in; w_rec ];
  let input = Tensor.full (Shape.vector units) bias_current in
  { cities; network; params; input }

let decode_tour t activations =
  let n = Array.length t.cities in
  let used = Array.make n false in
  Array.init n (fun pos ->
      let best = ref (-1) and best_v = ref neg_infinity in
      for city = 0 to n - 1 do
        if not used.(city) then begin
          let v = Tensor.get activations ((city * n) + pos) in
          if v > !best_v then begin best_v := v; best := city end
        end
      done;
      used.(!best) <- true;
      !best)

let solve t =
  let out =
    Db_nn.Interpreter.output t.network t.params
      ~inputs:[ (input_blob, t.input) ]
  in
  decode_tour t out

let tour_quality t tour =
  let optimal = Datasets.tsp_optimal_length t.cities in
  let actual = Datasets.tour_length t.cities tour in
  Db_util.Stats.rel_distance_accuracy ~golden:[| optimal |] ~approx:[| actual |]
