module Tensor = Db_tensor.Tensor
module Shape = Db_tensor.Shape
module Rng = Db_util.Rng

type labeled = { image : Tensor.t; label : int }

(* Digit-like glyphs: each class is a set of strokes on a unit square,
   rendered with per-sample jitter, thickness variation and pixel noise. *)
let glyph_strokes =
  (* (x0, y0, x1, y1) segments per class, loosely tracing 0-9. *)
  [|
    [ (0.3, 0.2, 0.7, 0.2); (0.7, 0.2, 0.7, 0.8); (0.7, 0.8, 0.3, 0.8); (0.3, 0.8, 0.3, 0.2) ];
    [ (0.5, 0.15, 0.5, 0.85) ];
    [ (0.3, 0.25, 0.7, 0.25); (0.7, 0.25, 0.7, 0.5); (0.7, 0.5, 0.3, 0.8); (0.3, 0.8, 0.7, 0.8) ];
    [ (0.3, 0.2, 0.7, 0.2); (0.7, 0.2, 0.7, 0.8); (0.3, 0.5, 0.7, 0.5); (0.3, 0.8, 0.7, 0.8) ];
    [ (0.3, 0.2, 0.3, 0.5); (0.3, 0.5, 0.7, 0.5); (0.7, 0.2, 0.7, 0.8) ];
    [ (0.7, 0.2, 0.3, 0.2); (0.3, 0.2, 0.3, 0.5); (0.3, 0.5, 0.7, 0.5); (0.7, 0.5, 0.7, 0.8); (0.7, 0.8, 0.3, 0.8) ];
    [ (0.6, 0.2, 0.3, 0.5); (0.3, 0.5, 0.3, 0.8); (0.3, 0.8, 0.7, 0.8); (0.7, 0.8, 0.7, 0.5); (0.7, 0.5, 0.3, 0.5) ];
    [ (0.3, 0.2, 0.7, 0.2); (0.7, 0.2, 0.4, 0.8) ];
    [ (0.3, 0.2, 0.7, 0.2); (0.7, 0.2, 0.7, 0.8); (0.7, 0.8, 0.3, 0.8); (0.3, 0.8, 0.3, 0.2); (0.3, 0.5, 0.7, 0.5) ];
    [ (0.7, 0.5, 0.3, 0.5); (0.3, 0.5, 0.3, 0.2); (0.3, 0.2, 0.7, 0.2); (0.7, 0.2, 0.7, 0.8) ];
  |]

let render_stroke data ~size ~thickness (x0, y0, x1, y1) =
  let steps = 4 * size in
  for i = 0 to steps do
    let t = float_of_int i /. float_of_int steps in
    let x = x0 +. (t *. (x1 -. x0)) and y = y0 +. (t *. (y1 -. y0)) in
    let px = int_of_float (x *. float_of_int (size - 1)) in
    let py = int_of_float (y *. float_of_int (size - 1)) in
    for dy = -thickness to thickness do
      for dx = -thickness to thickness do
        let qx = px + dx and qy = py + dy in
        if qx >= 0 && qx < size && qy >= 0 && qy < size then
          data.((qy * size) + qx) <- 1.0
      done
    done
  done

let digit_glyphs rng ~size ~count =
  Array.init count (fun _ ->
      let label = Rng.int rng 10 in
      let data = Array.make (size * size) 0.0 in
      let jx = Rng.uniform rng ~min:(-0.08) ~max:0.08 in
      let jy = Rng.uniform rng ~min:(-0.08) ~max:0.08 in
      let scale = Rng.uniform rng ~min:0.85 ~max:1.1 in
      let thickness = if size >= 14 then Rng.int rng 2 else 0 in
      List.iter
        (fun (x0, y0, x1, y1) ->
          let move x y =
            (0.5 +. (scale *. (x -. 0.5)) +. jx, 0.5 +. (scale *. (y -. 0.5)) +. jy)
          in
          let ax, ay = move x0 y0 and bx, by = move x1 y1 in
          render_stroke data ~size ~thickness (ax, ay, bx, by))
        glyph_strokes.(label);
      for i = 0 to (size * size) - 1 do
        data.(i) <- Float.min 1.0 (Float.max 0.0 (data.(i) +. Rng.gaussian rng ~mean:0.0 ~stddev:0.05))
      done;
      {
        image = Tensor.of_array (Shape.chw ~channels:1 ~height:size ~width:size) data;
        label;
      })

let colour_patterns rng ~size ~count ~classes =
  Array.init count (fun _ ->
      let label = Rng.int rng classes in
      let phase = float_of_int label /. float_of_int classes in
      let base_r = 0.5 +. (0.45 *. sin (2.0 *. Float.pi *. phase)) in
      let base_g = 0.5 +. (0.45 *. sin ((2.0 *. Float.pi *. phase) +. 2.1)) in
      let base_b = 0.5 +. (0.45 *. sin ((2.0 *. Float.pi *. phase) +. 4.2)) in
      let freq = 1.0 +. float_of_int (label mod 4) in
      let data = Array.make (3 * size * size) 0.0 in
      for y = 0 to size - 1 do
        for x = 0 to size - 1 do
          let fx = float_of_int x /. float_of_int size in
          let fy = float_of_int y /. float_of_int size in
          let texture =
            0.25 *. sin (2.0 *. Float.pi *. freq *. (fx +. (0.5 *. fy)))
          in
          let noise () = Rng.gaussian rng ~mean:0.0 ~stddev:0.25 in
          let put c v =
            data.((c * size * size) + (y * size) + x) <-
              Float.min 1.0 (Float.max 0.0 (v +. texture +. noise ()))
          in
          put 0 base_r;
          put 1 base_g;
          put 2 base_b
        done
      done;
      {
        image = Tensor.of_array (Shape.chw ~channels:3 ~height:size ~width:size) data;
        label;
      })

(* Two-link planar arm, links 0.5 + 0.5. *)
let arm_forward ~theta1 ~theta2 =
  let l1 = 0.5 and l2 = 0.5 in
  ( (l1 *. cos theta1) +. (l2 *. cos (theta1 +. theta2)),
    (l1 *. sin theta1) +. (l2 *. sin (theta1 +. theta2)) )

let arm_samples rng ~count =
  Array.init count (fun _ ->
      (* Sample joint angles, derive the target by forward kinematics so
         every sample is reachable and the inverse mapping is consistent. *)
      let theta1 = Rng.uniform rng ~min:0.2 ~max:(Float.pi /. 2.0) in
      let theta2 = Rng.uniform rng ~min:0.3 ~max:(Float.pi *. 0.75) in
      let x, y = arm_forward ~theta1 ~theta2 in
      (* Normalise everything into [0, 1] for the tile coder. *)
      let nx = (x +. 1.0) /. 2.0 and ny = (y +. 1.0) /. 2.0 in
      let nt1 = theta1 /. Float.pi and nt2 = theta2 /. Float.pi in
      ( Tensor.of_array (Shape.vector 2) [| nx; ny |],
        Tensor.of_array (Shape.vector 2) [| nt1; nt2 |] ))

let tsp_instance rng ~cities =
  Array.init cities (fun _ ->
      [| Rng.float rng 1.0; Rng.float rng 1.0 |])

let dist a b =
  let dx = a.(0) -. b.(0) and dy = a.(1) -. b.(1) in
  sqrt ((dx *. dx) +. (dy *. dy))

let tour_length cities tour =
  let n = Array.length tour in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. dist cities.(tour.(i)) cities.(tour.((i + 1) mod n))
  done;
  !acc

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) xs in
          List.map (fun p -> x :: p) (permutations rest))
        xs

let tsp_optimal_length cities =
  let n = Array.length cities in
  if n > 8 then invalid_arg "Datasets.tsp_optimal_length: too many cities";
  (* Fix city 0 as the start; enumerate the rest. *)
  let rest = List.init (n - 1) (fun i -> i + 1) in
  List.fold_left
    (fun best perm ->
      Float.min best (tour_length cities (Array.of_list (0 :: perm))))
    infinity (permutations rest)
