(** Golden-reference implementations of the three AxBench-style programs
    that the paper's ANN-0/1/2 approximate (general-purpose approximate
    computing after Esmaeilzadeh et al. [1]).

    Each program is the "orthodox program of accurate modeling" of Eq. (1):
    the NN approximator's quality is measured against these outputs. *)

(** {2 fft — spectral magnitudes (ANN-0)} *)

val fft_size : int
(** 8 real samples in, 8 magnitude bins out. *)

val fft_complex :
  (float * float) array -> (float * float) array
(** Radix-2 decimation-in-time FFT; length must be a power of two. *)

val fft_golden : float array -> float array
(** Real input of length {!fft_size}; returns the magnitude spectrum
    normalised by the length. *)

(** {2 jpeg — lossy 4x4 DCT block codec (ANN-1)} *)

val jpeg_block : int
(** Blocks are [jpeg_block x jpeg_block] = 4x4 = 16 pixels. *)

val dct2 : float array -> float array
(** 2-D type-II DCT of one block (orthonormal). *)

val idct2 : float array -> float array
(** Inverse (type-III) DCT; [idct2 (dct2 x) = x] up to rounding. *)

val jpeg_golden : float array -> float array
(** Encode-quantise-decode round trip of one block: DCT, quantisation with
    a fixed luminance-style table, de-quantisation, inverse DCT.  Inputs
    are pixels in [0, 1]. *)

(** {2 kmeans — nearest-centroid colour clustering (ANN-2)} *)

val kmeans_k : int
(** 6 fixed RGB centroids. *)

val kmeans_centroids : float array array

val kmeans_golden : float array -> float array
(** Input one RGB pixel in [0,1]^3; output the centroid's colour (the
    clustered pixel), as the AxBench kmeans kernel replaces each pixel by
    its cluster's colour. *)

val kmeans_assign : float array -> int
(** Index of the nearest centroid (squared Euclidean distance). *)
