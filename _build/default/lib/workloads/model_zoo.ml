let ann_prototxt ~name ~inputs ~hidden1 ~hidden2 ~outputs =
  Printf.sprintf
    {|
name: "%s"
layers { name: "data" type: INPUT top: "data" input_param { dim: %d } }
layers { name: "fc1" type: INNER_PRODUCT bottom: "data" top: "fc1"
  inner_product_param { num_output: %d } }
layers { name: "act1" type: SIGMOID bottom: "fc1" top: "act1" }
layers { name: "fc2" type: INNER_PRODUCT bottom: "act1" top: "fc2"
  inner_product_param { num_output: %d } }
layers { name: "act2" type: SIGMOID bottom: "fc2" top: "act2" }
layers { name: "fc3" type: INNER_PRODUCT bottom: "act2" top: "fc3"
  inner_product_param { num_output: %d } }
|}
    name inputs hidden1 hidden2 outputs

let mlp_prototxt =
  {|
name: "mlp"
layers { name: "data" type: INPUT top: "data" input_param { dim: 16 } }
layers { name: "hidden" type: INNER_PRODUCT bottom: "data" top: "hidden"
  inner_product_param { num_output: 32 } }
layers { name: "act" type: SIGMOID bottom: "hidden" top: "act" }
layers { name: "out" type: INNER_PRODUCT bottom: "act" top: "out"
  inner_product_param { num_output: 8 } }
|}

let cmac_prototxt =
  {|
name: "cmac"
layers { name: "target" type: INPUT top: "target" input_param { dim: 2 } }
layers { name: "tiles" type: ASSOCIATIVE bottom: "target" top: "tiles"
  associative_param { cells_per_dim: 32 active_cells: 4 } }
layers { name: "smooth" type: RECURRENT bottom: "tiles" top: "smooth"
  recurrent_param { num_output: 16 steps: 2 }
  connect { name: "s2s" direction: recurrent type: file_specified } }
layers { name: "joints" type: INNER_PRODUCT bottom: "smooth" top: "joints"
  inner_product_param { num_output: 2 } }
layers { name: "squash" type: SIGMOID bottom: "joints" top: "squash" }
|}

let cmac_surrogate_prototxt =
  {|
name: "cmac-surrogate"
layers { name: "target" type: INPUT top: "target" input_param { dim: 2 } }
layers { name: "tiles" type: ASSOCIATIVE bottom: "target" top: "tiles"
  associative_param { cells_per_dim: 32 active_cells: 4 } }
layers { name: "smooth" type: INNER_PRODUCT bottom: "tiles" top: "smooth"
  inner_product_param { num_output: 16 } }
layers { name: "smooth_act" type: TANH bottom: "smooth" top: "smooth_act" }
layers { name: "joints" type: INNER_PRODUCT bottom: "smooth_act" top: "joints"
  inner_product_param { num_output: 2 } }
layers { name: "squash" type: SIGMOID bottom: "joints" top: "squash" }
|}

let mnist_prototxt =
  {|
name: "mnist"
layers { name: "data" type: INPUT top: "data"
  input_param { dim: 1 dim: 16 dim: 16 } }
layers { name: "conv1" type: CONVOLUTION bottom: "data" top: "conv1"
  convolution_param { num_output: 8 kernel_size: 5 stride: 1 pad: 2 } }
layers { name: "relu1" type: RELU bottom: "conv1" top: "relu1" }
layers { name: "pool1" type: POOLING bottom: "relu1" top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
layers { name: "norm1" type: LRN bottom: "pool1" top: "norm1"
  lrn_param { local_size: 3 alpha: 0.0001 beta: 0.75 k: 1.0 } }
layers { name: "conv2" type: CONVOLUTION bottom: "norm1" top: "conv2"
  convolution_param { num_output: 16 kernel_size: 3 stride: 1 pad: 1 } }
layers { name: "relu2" type: RELU bottom: "conv2" top: "relu2" }
layers { name: "pool2" type: POOLING bottom: "relu2" top: "pool2"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
layers { name: "ip1" type: INNER_PRODUCT bottom: "pool2" top: "ip1"
  inner_product_param { num_output: 10 } }
layers { name: "prob" type: SOFTMAX bottom: "ip1" top: "prob" }
|}

let cifar_prototxt =
  {|
name: "cifar"
layers { name: "data" type: INPUT top: "data"
  input_param { dim: 3 dim: 32 dim: 32 } }
layers { name: "conv1" type: CONVOLUTION bottom: "data" top: "conv1"
  convolution_param { num_output: 32 kernel_size: 5 stride: 1 pad: 2 } }
layers { name: "pool1" type: POOLING bottom: "conv1" top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
layers { name: "relu1" type: RELU bottom: "pool1" top: "relu1" }
layers { name: "conv2" type: CONVOLUTION bottom: "relu1" top: "conv2"
  convolution_param { num_output: 32 kernel_size: 5 stride: 1 pad: 2 } }
layers { name: "relu2" type: RELU bottom: "conv2" top: "relu2" }
layers { name: "pool2" type: POOLING bottom: "relu2" top: "pool2"
  pooling_param { pool: AVE kernel_size: 2 stride: 2 } }
layers { name: "conv3" type: CONVOLUTION bottom: "pool2" top: "conv3"
  convolution_param { num_output: 64 kernel_size: 5 stride: 1 pad: 2 } }
layers { name: "relu3" type: RELU bottom: "conv3" top: "relu3" }
layers { name: "pool3" type: POOLING bottom: "relu3" top: "pool3"
  pooling_param { pool: AVE kernel_size: 2 stride: 2 } }
layers { name: "ip1" type: INNER_PRODUCT bottom: "pool3" top: "ip1"
  inner_product_param { num_output: 64 } }
layers { name: "ip2" type: INNER_PRODUCT bottom: "ip1" top: "ip2"
  inner_product_param { num_output: 10 } }
layers { name: "prob" type: SOFTMAX bottom: "ip2" top: "prob" }
|}

let cifar_lite_prototxt =
  {|
name: "cifar-lite"
layers { name: "data" type: INPUT top: "data"
  input_param { dim: 3 dim: 16 dim: 16 } }
layers { name: "conv1" type: CONVOLUTION bottom: "data" top: "conv1"
  convolution_param { num_output: 12 kernel_size: 5 stride: 1 pad: 2 } }
layers { name: "pool1" type: POOLING bottom: "conv1" top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
layers { name: "relu1" type: RELU bottom: "pool1" top: "relu1" }
layers { name: "conv2" type: CONVOLUTION bottom: "relu1" top: "conv2"
  convolution_param { num_output: 16 kernel_size: 3 stride: 1 pad: 1 } }
layers { name: "relu2" type: RELU bottom: "conv2" top: "relu2" }
layers { name: "pool2" type: POOLING bottom: "relu2" top: "pool2"
  pooling_param { pool: AVE kernel_size: 2 stride: 2 } }
layers { name: "ip1" type: INNER_PRODUCT bottom: "pool2" top: "ip1"
  inner_product_param { num_output: 32 } }
layers { name: "relu3" type: RELU bottom: "ip1" top: "relu3" }
layers { name: "ip2" type: INNER_PRODUCT bottom: "relu3" top: "ip2"
  inner_product_param { num_output: 10 } }
layers { name: "prob" type: SOFTMAX bottom: "ip2" top: "prob" }
|}

let alexnet_prototxt =
  {|
name: "alexnet"
layers { name: "data" type: INPUT top: "data"
  input_param { dim: 3 dim: 227 dim: 227 } }
layers { name: "conv1" type: CONVOLUTION bottom: "data" top: "conv1"
  convolution_param { num_output: 96 kernel_size: 11 stride: 4 } }
layers { name: "relu1" type: RELU bottom: "conv1" top: "relu1" }
layers { name: "norm1" type: LRN bottom: "relu1" top: "norm1"
  lrn_param { local_size: 5 alpha: 0.0001 beta: 0.75 k: 1.0 } }
layers { name: "pool1" type: POOLING bottom: "norm1" top: "pool1"
  pooling_param { pool: MAX kernel_size: 3 stride: 2 } }
layers { name: "conv2" type: CONVOLUTION bottom: "pool1" top: "conv2"
  convolution_param { num_output: 256 kernel_size: 5 pad: 2 group: 2 } }
layers { name: "relu2" type: RELU bottom: "conv2" top: "relu2" }
layers { name: "norm2" type: LRN bottom: "relu2" top: "norm2"
  lrn_param { local_size: 5 alpha: 0.0001 beta: 0.75 k: 1.0 } }
layers { name: "pool2" type: POOLING bottom: "norm2" top: "pool2"
  pooling_param { pool: MAX kernel_size: 3 stride: 2 } }
layers { name: "conv3" type: CONVOLUTION bottom: "pool2" top: "conv3"
  convolution_param { num_output: 384 kernel_size: 3 pad: 1 } }
layers { name: "relu3" type: RELU bottom: "conv3" top: "relu3" }
layers { name: "conv4" type: CONVOLUTION bottom: "relu3" top: "conv4"
  convolution_param { num_output: 384 kernel_size: 3 pad: 1 group: 2 } }
layers { name: "relu4" type: RELU bottom: "conv4" top: "relu4" }
layers { name: "conv5" type: CONVOLUTION bottom: "relu4" top: "conv5"
  convolution_param { num_output: 256 kernel_size: 3 pad: 1 group: 2 } }
layers { name: "relu5" type: RELU bottom: "conv5" top: "relu5" }
layers { name: "pool5" type: POOLING bottom: "relu5" top: "pool5"
  pooling_param { pool: MAX kernel_size: 3 stride: 2 } }
layers { name: "fc6" type: INNER_PRODUCT bottom: "pool5" top: "fc6"
  inner_product_param { num_output: 4096 } }
layers { name: "relu6" type: RELU bottom: "fc6" top: "relu6" }
layers { name: "drop6" type: DROPOUT bottom: "relu6" top: "drop6"
  dropout_param { dropout_ratio: 0.5 } }
layers { name: "fc7" type: INNER_PRODUCT bottom: "drop6" top: "fc7"
  inner_product_param { num_output: 4096 } }
layers { name: "relu7" type: RELU bottom: "fc7" top: "relu7" }
layers { name: "drop7" type: DROPOUT bottom: "relu7" top: "drop7"
  dropout_param { dropout_ratio: 0.5 } }
layers { name: "fc8" type: INNER_PRODUCT bottom: "drop7" top: "fc8"
  inner_product_param { num_output: 1000 } }
layers { name: "prob" type: SOFTMAX bottom: "fc8" top: "prob" }
|}

let nin_prototxt =
  {|
name: "nin"
layers { name: "data" type: INPUT top: "data"
  input_param { dim: 3 dim: 227 dim: 227 } }
layers { name: "conv1" type: CONVOLUTION bottom: "data" top: "conv1"
  convolution_param { num_output: 96 kernel_size: 11 stride: 4 } }
layers { name: "relu0" type: RELU bottom: "conv1" top: "relu0" }
layers { name: "cccp1" type: CONVOLUTION bottom: "relu0" top: "cccp1"
  convolution_param { num_output: 96 kernel_size: 1 } }
layers { name: "relu1" type: RELU bottom: "cccp1" top: "relu1" }
layers { name: "cccp2" type: CONVOLUTION bottom: "relu1" top: "cccp2"
  convolution_param { num_output: 96 kernel_size: 1 } }
layers { name: "relu2" type: RELU bottom: "cccp2" top: "relu2" }
layers { name: "pool1" type: POOLING bottom: "relu2" top: "pool1"
  pooling_param { pool: MAX kernel_size: 3 stride: 2 } }
layers { name: "conv2" type: CONVOLUTION bottom: "pool1" top: "conv2"
  convolution_param { num_output: 256 kernel_size: 5 pad: 2 } }
layers { name: "relu3" type: RELU bottom: "conv2" top: "relu3" }
layers { name: "cccp3" type: CONVOLUTION bottom: "relu3" top: "cccp3"
  convolution_param { num_output: 256 kernel_size: 1 } }
layers { name: "relu4" type: RELU bottom: "cccp3" top: "relu4" }
layers { name: "cccp4" type: CONVOLUTION bottom: "relu4" top: "cccp4"
  convolution_param { num_output: 256 kernel_size: 1 } }
layers { name: "relu5" type: RELU bottom: "cccp4" top: "relu5" }
layers { name: "pool2" type: POOLING bottom: "relu5" top: "pool2"
  pooling_param { pool: MAX kernel_size: 3 stride: 2 } }
layers { name: "conv3" type: CONVOLUTION bottom: "pool2" top: "conv3"
  convolution_param { num_output: 384 kernel_size: 3 pad: 1 } }
layers { name: "relu6" type: RELU bottom: "conv3" top: "relu6" }
layers { name: "cccp5" type: CONVOLUTION bottom: "relu6" top: "cccp5"
  convolution_param { num_output: 384 kernel_size: 1 } }
layers { name: "relu7" type: RELU bottom: "cccp5" top: "relu7" }
layers { name: "cccp6" type: CONVOLUTION bottom: "relu7" top: "cccp6"
  convolution_param { num_output: 384 kernel_size: 1 } }
layers { name: "relu8" type: RELU bottom: "cccp6" top: "relu8" }
layers { name: "pool3" type: POOLING bottom: "relu8" top: "pool3"
  pooling_param { pool: MAX kernel_size: 3 stride: 2 } }
layers { name: "drop" type: DROPOUT bottom: "pool3" top: "drop"
  dropout_param { dropout_ratio: 0.5 } }
layers { name: "conv4" type: CONVOLUTION bottom: "drop" top: "conv4"
  convolution_param { num_output: 1024 kernel_size: 3 pad: 1 } }
layers { name: "relu9" type: RELU bottom: "conv4" top: "relu9" }
layers { name: "cccp7" type: CONVOLUTION bottom: "relu9" top: "cccp7"
  convolution_param { num_output: 1024 kernel_size: 1 } }
layers { name: "relu10" type: RELU bottom: "cccp7" top: "relu10" }
layers { name: "cccp8" type: CONVOLUTION bottom: "relu10" top: "cccp8"
  convolution_param { num_output: 1000 kernel_size: 1 } }
layers { name: "gap" type: GLOBAL_POOLING bottom: "cccp8" top: "gap"
  pooling_param { pool: AVE } }
layers { name: "prob" type: SOFTMAX bottom: "gap" top: "prob" }
|}

let googlenet_like_prototxt =
  {|
name: "googlenet-like"
layers { name: "data" type: INPUT top: "data"
  input_param { dim: 3 dim: 32 dim: 32 } }
layers { name: "stem" type: CONVOLUTION bottom: "data" top: "stem"
  convolution_param { num_output: 16 kernel_size: 3 pad: 1 } }
layers { name: "stem_relu" type: RELU bottom: "stem" top: "stem_relu" }
layers { name: "norm1" type: LRN bottom: "stem_relu" top: "norm1"
  lrn_param { local_size: 3 alpha: 0.0001 beta: 0.75 k: 1.0 } }
layers { name: "inc_1x1" type: CONVOLUTION bottom: "norm1" top: "inc_1x1"
  convolution_param { num_output: 8 kernel_size: 1 } }
layers { name: "inc_3x3" type: CONVOLUTION bottom: "norm1" top: "inc_3x3"
  convolution_param { num_output: 8 kernel_size: 3 pad: 1 } }
layers { name: "inc_5x5" type: CONVOLUTION bottom: "norm1" top: "inc_5x5"
  convolution_param { num_output: 8 kernel_size: 5 pad: 2 } }
layers { name: "inception" type: CONCAT bottom: "inc_1x1" bottom: "inc_3x3"
  bottom: "inc_5x5" top: "inception" }
layers { name: "inc_relu" type: RELU bottom: "inception" top: "inc_relu" }
layers { name: "pool" type: POOLING bottom: "inc_relu" top: "pool"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
layers { name: "drop" type: DROPOUT bottom: "pool" top: "drop"
  dropout_param { dropout_ratio: 0.4 } }
layers { name: "fc" type: INNER_PRODUCT bottom: "drop" top: "fc"
  inner_product_param { num_output: 10 } }
layers { name: "prob" type: SOFTMAX bottom: "fc" top: "prob" }
|}

let lenet5_prototxt =
  {|
name: "lenet-5"
layers { name: "data" type: INPUT top: "data"
  input_param { dim: 1 dim: 32 dim: 32 } }
layers { name: "c1" type: CONVOLUTION bottom: "data" top: "c1"
  convolution_param { num_output: 6 kernel_size: 5 } }
layers { name: "t1" type: TANH bottom: "c1" top: "t1" }
layers { name: "s2" type: POOLING bottom: "t1" top: "s2"
  pooling_param { pool: AVE kernel_size: 2 stride: 2 } }
layers { name: "c3" type: CONVOLUTION bottom: "s2" top: "c3"
  convolution_param { num_output: 16 kernel_size: 5 } }
layers { name: "t2" type: TANH bottom: "c3" top: "t2" }
layers { name: "s4" type: POOLING bottom: "t2" top: "s4"
  pooling_param { pool: AVE kernel_size: 2 stride: 2 } }
layers { name: "c5" type: INNER_PRODUCT bottom: "s4" top: "c5"
  inner_product_param { num_output: 120 } }
layers { name: "t3" type: TANH bottom: "c5" top: "t3" }
layers { name: "f6" type: INNER_PRODUCT bottom: "t3" top: "f6"
  inner_product_param { num_output: 84 } }
layers { name: "t4" type: TANH bottom: "f6" top: "t4" }
layers { name: "out" type: INNER_PRODUCT bottom: "t4" top: "out"
  inner_product_param { num_output: 10 } }
|}

let vgg16_prototxt =
  let conv name bottom top n =
    Printf.sprintf
      {|layers { name: "%s" type: CONVOLUTION bottom: "%s" top: "%s"
  convolution_param { num_output: %d kernel_size: 3 pad: 1 } }
layers { name: "%s_r" type: RELU bottom: "%s" top: "%sr" }
|}
      name bottom top n name top top
  in
  let pool name bottom top =
    Printf.sprintf
      {|layers { name: "%s" type: POOLING bottom: "%s" top: "%s"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 } }
|}
      name bottom top
  in
  String.concat ""
    [
      "name: \"vgg-16\"\n";
      {|layers { name: "data" type: INPUT top: "data"
  input_param { dim: 3 dim: 224 dim: 224 } }
|};
      conv "conv1_1" "data" "c11" 64;
      conv "conv1_2" "c11r" "c12" 64;
      pool "pool1" "c12r" "p1";
      conv "conv2_1" "p1" "c21" 128;
      conv "conv2_2" "c21r" "c22" 128;
      pool "pool2" "c22r" "p2";
      conv "conv3_1" "p2" "c31" 256;
      conv "conv3_2" "c31r" "c32" 256;
      conv "conv3_3" "c32r" "c33" 256;
      pool "pool3" "c33r" "p3";
      conv "conv4_1" "p3" "c41" 512;
      conv "conv4_2" "c41r" "c42" 512;
      conv "conv4_3" "c42r" "c43" 512;
      pool "pool4" "c43r" "p4";
      conv "conv5_1" "p4" "c51" 512;
      conv "conv5_2" "c51r" "c52" 512;
      conv "conv5_3" "c52r" "c53" 512;
      pool "pool5" "c53r" "p5";
      {|layers { name: "fc6" type: INNER_PRODUCT bottom: "p5" top: "fc6"
  inner_product_param { num_output: 4096 } }
layers { name: "relu6" type: RELU bottom: "fc6" top: "fc6r" }
layers { name: "fc7" type: INNER_PRODUCT bottom: "fc6r" top: "fc7"
  inner_product_param { num_output: 4096 } }
layers { name: "relu7" type: RELU bottom: "fc7" top: "fc7r" }
layers { name: "fc8" type: INNER_PRODUCT bottom: "fc7r" top: "fc8"
  inner_product_param { num_output: 1000 } }
layers { name: "prob" type: SOFTMAX bottom: "fc8" top: "prob" }
|};
    ]

let hopfield_prototxt ~cities =
  let units = cities * cities in
  Printf.sprintf
    {|
name: "hopfield-tsp"
layers { name: "bias_in" type: INPUT top: "bias" input_param { dim: %d } }
layers { name: "relax" type: RECURRENT bottom: "bias" top: "state"
  recurrent_param { num_output: %d steps: 60 bias_term: false }
  connect { name: "p2f2" direction: recurrent type: file_specified } }
|}
    units units

let build src = Db_nn.Caffe.import_string src

let table1_models =
  [
    ("MLP", build mlp_prototxt);
    ("Hopfield", build (hopfield_prototxt ~cities:5));
    ("CMAC", build cmac_prototxt);
    ("Alexnet", build alexnet_prototxt);
    ("Mnist", build mnist_prototxt);
    ("GoogleNet", build googlenet_like_prototxt);
  ]
