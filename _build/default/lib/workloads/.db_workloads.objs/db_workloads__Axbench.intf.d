lib/workloads/axbench.mli:
