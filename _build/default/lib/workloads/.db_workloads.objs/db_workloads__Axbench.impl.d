lib/workloads/axbench.ml: Array Float
