lib/workloads/hopfield.ml: Array Datasets Db_nn Db_tensor Db_util
