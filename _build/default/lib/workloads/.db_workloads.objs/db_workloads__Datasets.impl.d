lib/workloads/datasets.ml: Array Db_tensor Db_util Float List
