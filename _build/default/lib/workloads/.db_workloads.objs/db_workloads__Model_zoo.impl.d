lib/workloads/model_zoo.ml: Db_nn Printf String
