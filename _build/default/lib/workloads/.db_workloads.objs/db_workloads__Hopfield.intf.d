lib/workloads/hopfield.mli: Db_nn Db_tensor
