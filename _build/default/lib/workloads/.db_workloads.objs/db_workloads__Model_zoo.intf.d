lib/workloads/model_zoo.mli: Db_nn
