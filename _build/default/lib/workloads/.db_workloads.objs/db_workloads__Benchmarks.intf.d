lib/workloads/benchmarks.mli: Db_nn Db_tensor
