lib/workloads/datasets.mli: Db_tensor Db_util
