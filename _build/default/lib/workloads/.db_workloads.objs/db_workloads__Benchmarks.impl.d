lib/workloads/benchmarks.ml: Array Axbench Datasets Db_nn Db_tensor Db_train Db_util Float Hashtbl Hopfield List Model_zoo
