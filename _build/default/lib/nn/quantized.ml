module Tensor = Db_tensor.Tensor
module Shape = Db_tensor.Shape
module Fixed = Db_fixed.Fixed

type qtensor = { qshape : Shape.t; qdata : int array }

type function_eval = {
  eval_activation : Layer.activation -> float -> float;
  eval_reciprocal : float -> float;
  eval_power : float -> float -> float;
  eval_exp : float -> float;
}

let exact_activation act x =
  match act with
  | Layer.Relu -> Float.max 0.0 x
  | Layer.Sigmoid -> 1.0 /. (1.0 +. exp (-.x))
  | Layer.Tanh -> Float.tanh x
  | Layer.Sign -> if x >= 0.0 then 1.0 else -1.0

let exact_eval =
  {
    eval_activation = exact_activation;
    eval_reciprocal = (fun x -> 1.0 /. x);
    eval_power = (fun x p -> x ** p);
    eval_exp = exp;
  }

let fail fmt = Db_util.Error.failf_at ~component:"quantized" fmt

let quantize fmt t =
  { qshape = Tensor.shape t; qdata = Fixed.quantize_tensor fmt t }

let dequantize fmt q = Fixed.dequantize_tensor fmt ~shape:q.qshape q.qdata

(* Rescale a wide accumulator of frac*2 fractional bits back to the working
   format, with round-to-nearest, then saturate. *)
let rescale_acc fmt acc =
  let frac = fmt.Fixed.frac_bits in
  let half = if frac = 0 then 0 else 1 lsl (frac - 1) in
  let rounded =
    if frac = 0 then acc
    else if acc >= 0 then (acc + half) asr frac
    else -((-acc + half) asr frac)
  in
  Fixed.saturate fmt rounded

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2_exact n =
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v asr 1) in
  go 0 n

let qconv2d fmt ~input ~weights ~bias ~stride ~pad ~group =
  let cin = Shape.channels input.qshape
  and h = Shape.height input.qshape
  and w = Shape.width input.qshape in
  let wsh = weights.qshape in
  let cout = Shape.dim wsh 0
  and cin_g = Shape.dim wsh 1
  and k = Shape.dim wsh 2 in
  let oh = Db_tensor.Ops.conv_output_dim ~input:h ~kernel:k ~stride ~pad_lo:pad ~pad_hi:pad in
  let ow = Db_tensor.Ops.conv_output_dim ~input:w ~kernel:k ~stride ~pad_lo:pad ~pad_hi:pad in
  assert (cin mod group = 0 && cout mod group = 0 && cin_g = cin / group);
  let out = Array.make (cout * oh * ow) 0 in
  let cout_g = cout / group in
  for oc = 0 to cout - 1 do
    let g = oc / cout_g in
    let base_ic = g * cin_g in
    let b =
      match bias with
      | None -> 0
      | Some bt -> bt.qdata.(oc) lsl fmt.Fixed.frac_bits
    in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref b in
        for ic = 0 to cin_g - 1 do
          for ky = 0 to k - 1 do
            let iy = (oy * stride) + ky - pad in
            if iy >= 0 && iy < h then
              for kx = 0 to k - 1 do
                let ix = (ox * stride) + kx - pad in
                if ix >= 0 && ix < w then begin
                  let iv = input.qdata.(((base_ic + ic) * h * w) + (iy * w) + ix) in
                  let wv = weights.qdata.((((oc * cin_g) + ic) * k * k) + (ky * k) + kx) in
                  acc := !acc + (iv * wv)
                end
              done
          done
        done;
        out.((oc * oh * ow) + (oy * ow) + ox) <- rescale_acc fmt !acc
      done
    done
  done;
  { qshape = Shape.chw ~channels:cout ~height:oh ~width:ow; qdata = out }

let qfully_connected fmt ~input ~weights ~bias =
  let nout = Shape.dim weights.qshape 0
  and nin = Shape.dim weights.qshape 1 in
  if Array.length input.qdata <> nin then fail "fc: input size mismatch";
  let out = Array.make nout 0 in
  for o = 0 to nout - 1 do
    let acc =
      ref
        (match bias with
        | None -> 0
        | Some bt -> bt.qdata.(o) lsl fmt.Fixed.frac_bits)
    in
    for i = 0 to nin - 1 do
      acc := !acc + (weights.qdata.((o * nin) + i) * input.qdata.(i))
    done;
    out.(o) <- rescale_acc fmt !acc
  done;
  { qshape = Shape.vector nout; qdata = out }

let qpool fmt ~method_ ~input ~kernel ~stride ~eval =
  let c = Shape.channels input.qshape
  and h = Shape.height input.qshape
  and w = Shape.width input.qshape in
  let oh = Db_tensor.Ops.conv_output_dim ~input:h ~kernel ~stride ~pad_lo:0 ~pad_hi:0 in
  let ow = Db_tensor.Ops.conv_output_dim ~input:w ~kernel ~stride ~pad_lo:0 ~pad_hi:0 in
  let out = Array.make (c * oh * ow) 0 in
  let area = kernel * kernel in
  let recip_q =
    Fixed.of_float fmt (eval.eval_reciprocal (float_of_int area))
  in
  for ch = 0 to c - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let value =
          match method_ with
          | Layer.Max ->
              let best = ref min_int in
              for ky = 0 to kernel - 1 do
                for kx = 0 to kernel - 1 do
                  let v = input.qdata.((ch * h * w) + (((oy * stride) + ky) * w) + (ox * stride) + kx) in
                  if v > !best then best := v
                done
              done;
              !best
          | Layer.Average ->
              let acc = ref 0 in
              for ky = 0 to kernel - 1 do
                for kx = 0 to kernel - 1 do
                  acc := !acc + input.qdata.((ch * h * w) + (((oy * stride) + ky) * w) + (ox * stride) + kx)
                done
              done;
              (* The connection box's shifting latch divides exactly for
                 power-of-two areas; otherwise multiply by the (possibly
                 LUT-approximated) reciprocal. *)
              if is_power_of_two area then
                Fixed.shift_right_approx fmt !acc (log2_exact area)
              else Fixed.mul fmt (Fixed.saturate fmt !acc) recip_q
        in
        out.((ch * oh * ow) + (oy * ow) + ox) <- value
      done
    done
  done;
  { qshape = Shape.chw ~channels:c ~height:oh ~width:ow; qdata = out }

let qmap fmt f input =
  {
    input with
    qdata =
      Array.map (fun v -> Fixed.of_float fmt (f (Fixed.to_float fmt v))) input.qdata;
  }

let qrecurrent fmt ~eval ~w_in ~w_rec ~bias ~steps input =
  let nout = Shape.dim w_in.qshape 0 in
  let state = ref { qshape = Shape.vector nout; qdata = Array.make nout 0 } in
  for _step = 1 to steps do
    let drive = qfully_connected fmt ~input ~weights:w_in ~bias in
    let feedback = qfully_connected fmt ~input:!state ~weights:w_rec ~bias:None in
    let summed =
      Array.init nout (fun i ->
          Fixed.add fmt drive.qdata.(i) feedback.qdata.(i))
    in
    state :=
      qmap fmt
        (eval.eval_activation Layer.Tanh)
        { qshape = Shape.vector nout; qdata = summed }
  done;
  !state

let qlrn fmt ~eval ~input ~local_size ~alpha ~beta ~k =
  let c = Shape.channels input.qshape
  and h = Shape.height input.qshape
  and w = Shape.width input.qshape in
  let half = local_size / 2 in
  let out = Array.make (c * h * w) 0 in
  for ch = 0 to c - 1 do
    let lo = Stdlib.max 0 (ch - half) and hi = Stdlib.min (c - 1) (ch + half) in
    for y = 0 to h - 1 do
      for x = 0 to w - 1 do
        let sq = ref 0.0 in
        for j = lo to hi do
          let v = Fixed.to_float fmt input.qdata.((j * h * w) + (y * w) + x) in
          sq := !sq +. (v *. v)
        done;
        let scale = k +. (alpha /. float_of_int local_size *. !sq) in
        let v = Fixed.to_float fmt input.qdata.((ch * h * w) + (y * w) + x) in
        (* The hardware reads scale^-beta in one LUT lookup. *)
        let inv_denom = eval.eval_power scale (-.beta) in
        out.((ch * h * w) + (y * w) + x) <- Fixed.of_float fmt (v *. inv_denom)
      done
    done
  done;
  { qshape = input.qshape; qdata = out }

let qsoftmax fmt ~eval input =
  let floats = Array.map (Fixed.to_float fmt) input.qdata in
  let m = Array.fold_left Float.max neg_infinity floats in
  let exps = Array.map (fun x -> eval.eval_exp (x -. m)) floats in
  let total = Array.fold_left ( +. ) 0.0 exps in
  let inv = eval.eval_reciprocal total in
  {
    input with
    qdata = Array.map (fun e -> Fixed.of_float fmt (e *. inv)) exps;
  }

let qclassifier ~top_k input =
  let n = Array.length input.qdata in
  let indices = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      if input.qdata.(a) > input.qdata.(b) then -1
      else if input.qdata.(a) < input.qdata.(b) then 1
      else compare a b)
    indices;
  (* Indices are integers: represent them exactly in the integer part. *)
  { qshape = Shape.vector top_k; qdata = Array.init top_k (fun i -> indices.(i)) }

let eval_node fmt eval layer ~params ~bottoms =
  let one () =
    match bottoms with
    | [ b ] -> b
    | _ -> fail "layer %s expects one bottom" (Layer.name layer)
  in
  let flat q = { q with qshape = Shape.vector (Array.length q.qdata) } in
  match layer with
  | Layer.Input _ -> fail "input layers are not evaluated"
  | Layer.Convolution { stride; pad; group; bias = has_bias; _ } -> begin
      match params, has_bias with
      | [ w ], false ->
          qconv2d fmt ~input:(one ()) ~weights:w ~bias:None ~stride ~pad ~group
      | [ w; b ], true ->
          qconv2d fmt ~input:(one ()) ~weights:w ~bias:(Some b) ~stride ~pad
            ~group
      | _ -> fail "convolution: wrong parameter tensors"
    end
  | Layer.Pooling { method_; kernel_size; stride } ->
      qpool fmt ~method_ ~input:(one ()) ~kernel:kernel_size ~stride ~eval
  | Layer.Global_pooling method_ ->
      let input = one () in
      let c = Shape.channels input.qshape in
      let hw = Array.length input.qdata / c in
      let out =
        Array.init c (fun ch ->
            match method_ with
            | Layer.Max ->
                let best = ref min_int in
                for i = 0 to hw - 1 do
                  if input.qdata.((ch * hw) + i) > !best then
                    best := input.qdata.((ch * hw) + i)
                done;
                !best
            | Layer.Average ->
                let acc = ref 0 in
                for i = 0 to hw - 1 do
                  acc := !acc + input.qdata.((ch * hw) + i)
                done;
                if is_power_of_two hw then
                  Fixed.shift_right_approx fmt !acc (log2_exact hw)
                else
                  Fixed.mul fmt (Fixed.saturate fmt !acc)
                    (Fixed.of_float fmt (eval.eval_reciprocal (float_of_int hw))))
      in
      { qshape = Shape.vector c; qdata = out }
  | Layer.Inner_product { bias = has_bias; _ } -> begin
      match params, has_bias with
      | [ w ], false -> qfully_connected fmt ~input:(flat (one ())) ~weights:w ~bias:None
      | [ w; b ], true ->
          qfully_connected fmt ~input:(flat (one ())) ~weights:w ~bias:(Some b)
      | _ -> fail "inner product: wrong parameter tensors"
    end
  | Layer.Activation act -> qmap fmt (eval.eval_activation act) (one ())
  | Layer.Lrn { local_size; alpha; beta; k } ->
      qlrn fmt ~eval ~input:(one ()) ~local_size ~alpha ~beta ~k
  | Layer.Lcn { window; epsilon } ->
      (* The mean/variance path runs on the accumulators; the division goes
         through the reciprocal Approx LUT like average pooling does. *)
      let input = one () in
      let shape = input.qshape in
      let c = Shape.channels shape
      and h = Shape.height shape
      and w = Shape.width shape in
      let half = window / 2 in
      let out = Array.make (c * h * w) 0 in
      for ch = 0 to c - 1 do
        for y = 0 to h - 1 do
          for x = 0 to w - 1 do
            let sum = ref 0.0 and sumsq = ref 0.0 and count = ref 0 in
            for dy = -half to half do
              for dx = -half to half do
                let yy = y + dy and xx = x + dx in
                if yy >= 0 && yy < h && xx >= 0 && xx < w then begin
                  let v =
                    Fixed.to_float fmt input.qdata.((ch * h * w) + (yy * w) + xx)
                  in
                  sum := !sum +. v;
                  sumsq := !sumsq +. (v *. v);
                  incr count
                end
              done
            done;
            let n = float_of_int !count in
            let mean = !sum /. n in
            let var = Float.max 0.0 ((!sumsq /. n) -. (mean *. mean)) in
            let denom = Float.max epsilon (sqrt var) in
            let v = Fixed.to_float fmt input.qdata.((ch * h * w) + (y * w) + x) in
            out.((ch * h * w) + (y * w) + x) <-
              Fixed.of_float fmt ((v -. mean) *. eval.eval_reciprocal denom)
          done
        done
      done;
      { qshape = shape; qdata = out }
  | Layer.Dropout _ -> one ()
  | Layer.Softmax -> qsoftmax fmt ~eval (one ())
  | Layer.Recurrent { steps; bias = has_bias; _ } -> begin
      match params, has_bias with
      | [ w_in; w_rec ], false ->
          qrecurrent fmt ~eval ~w_in ~w_rec ~bias:None ~steps (flat (one ()))
      | [ w_in; w_rec; b ], true ->
          qrecurrent fmt ~eval ~w_in ~w_rec ~bias:(Some b) ~steps (flat (one ()))
      | _ -> fail "recurrent: wrong parameter tensors"
    end
  | Layer.Associative { cells_per_dim; active_cells } ->
      let input = dequantize fmt (flat (one ())) in
      quantize fmt
        (Interpreter.associative_encode ~cells_per_dim ~active_cells input)
  | Layer.Concat ->
      let total = List.fold_left (fun acc b -> acc + Array.length b.qdata) 0 bottoms in
      let first = match bottoms with b :: _ -> b | [] -> fail "concat: no bottoms" in
      let h = Shape.height first.qshape and w = Shape.width first.qshape in
      let channels = total / (h * w) in
      let out = Array.make total 0 in
      let offset = ref 0 in
      List.iter
        (fun b ->
          Array.blit b.qdata 0 out !offset (Array.length b.qdata);
          offset := !offset + Array.length b.qdata)
        bottoms;
      { qshape = Shape.chw ~channels ~height:h ~width:w; qdata = out }
  | Layer.Classifier { top_k } -> qclassifier ~top_k (flat (one ()))

let forward ?(eval = exact_eval) ~fmt net params ~inputs =
  let env = ref [] in
  let blob name =
    match List.assoc_opt name !env with
    | Some t -> t
    | None -> fail "blob %S not available" name
  in
  Network.iter net (fun node ->
      let out =
        match node.Network.layer with
        | Layer.Input { shape } -> begin
            match node.Network.tops with
            | [ top ] -> begin
                match List.assoc_opt top inputs with
                | Some t ->
                    if not (Shape.equal (Tensor.shape t) shape) then
                      fail "input %S: shape mismatch" top;
                    quantize fmt t
                | None -> fail "missing input tensor for blob %S" top
              end
            | [] | _ :: _ :: _ -> fail "input node must have exactly one top"
          end
        | layer ->
            let bottoms = List.map blob node.Network.bottoms in
            let qparams =
              List.map (quantize fmt) (Params.get params node.Network.node_name)
            in
            eval_node fmt eval layer ~params:qparams ~bottoms
      in
      List.iter (fun top -> env := (top, out) :: !env) node.Network.tops);
  List.rev !env

let output ?(eval = exact_eval) ~fmt net params ~inputs =
  let env = forward ~eval ~fmt net params ~inputs in
  match Network.output_blobs net with
  | [ blob ] -> begin
      match List.assoc_opt blob env with
      | Some q ->
          (* Classifier outputs carry integer indices, not Q-format values. *)
          let is_classifier =
            Network.has_layer net (function
              | Layer.Classifier _ -> true
              | _ -> false)
            &&
            (match List.rev net.Network.nodes with
            | last :: _ -> (
                match last.Network.layer with Layer.Classifier _ -> true | _ -> false)
            | [] -> false)
          in
          if is_classifier then
            Tensor.of_array q.qshape (Array.map float_of_int q.qdata)
          else dequantize fmt q
      | None -> fail "output blob missing from environment"
    end
  | blobs -> fail "network has %d output blobs, expected one" (List.length blobs)
