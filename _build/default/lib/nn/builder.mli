(** Fluent network construction.

    The prototxt importer is the paper's interface; this is the OCaml-side
    equivalent for programmatic use (tests, generated model sweeps):

    {[
      let net =
        Builder.(
          input (Shape.chw ~channels:1 ~height:16 ~width:16)
          |> conv ~num_output:8 ~kernel_size:5 ~pad:2
          |> relu
          |> max_pool ~kernel_size:2 ~stride:2
          |> fc ~num_output:10
          |> softmax
          |> build ~name:"little-cnn")
      ]}

    Node and blob names are generated ([conv1], [pool2], ...); each step
    consumes the previous step's top blob. *)

type t

val input : Db_tensor.Shape.t -> t

val conv :
  ?stride:int -> ?pad:int -> ?group:int -> ?bias:bool ->
  num_output:int -> kernel_size:int -> t -> t

val max_pool : kernel_size:int -> stride:int -> t -> t

val avg_pool : kernel_size:int -> stride:int -> t -> t

val global_avg_pool : t -> t

val fc : ?bias:bool -> num_output:int -> t -> t

val relu : t -> t

val sigmoid : t -> t

val tanh : t -> t

val lrn : ?local_size:int -> ?alpha:float -> ?beta:float -> ?k:float -> t -> t

val lcn : ?window:int -> ?epsilon:float -> t -> t

val dropout : ?ratio:float -> t -> t

val softmax : t -> t

val recurrent : ?bias:bool -> num_output:int -> steps:int -> t -> t

val associative : ?active_cells:int -> cells_per_dim:int -> t -> t

val classifier : top_k:int -> t -> t

val layer : Layer.t -> t -> t
(** Append any layer (escape hatch for new classes). *)

val build : name:string -> t -> Network.t
(** Validates via {!Network.create}. *)
