(** Network graphs in the Caffe blob/layer style.

    A network is a list of named layer nodes; each node consumes the blobs
    named in [bottoms] and produces the blobs named in [tops].  The graph
    must be a DAG over blobs (recurrence is internal to the
    {!Layer.Recurrent} node, mirroring the paper's [connect { direction:
    recurrent }] construct, which loops a blob back into the same layer). *)

type node = {
  node_name : string;
  layer : Layer.t;
  bottoms : string list;
  tops : string list;
}

type t = private {
  net_name : string;
  nodes : node list;  (** in topological order after {!create} *)
}

val create : name:string -> node list -> t
(** Validates and topologically sorts the nodes.  Checks performed:
    unique node names and top names, every bottom produced by some top or by
    an input node, at least one {!Layer.Input}, arity of bottoms per layer
    class (e.g. [Concat] needs >= 2, everything else exactly 1, inputs 0),
    acyclicity.  Raises {!Db_util.Error.Deepburning_error} otherwise. *)

val find_node : t -> string -> node
(** Raises [Not_found]. *)

val input_nodes : t -> node list

val output_blobs : t -> string list
(** Blobs produced but never consumed, in node order. *)

val layer_count : t -> int
(** Number of non-input nodes. *)

val iter : t -> (node -> unit) -> unit

val fold : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val has_layer : t -> (Layer.t -> bool) -> bool

val pp : Format.formatter -> t -> unit
