type t = { nodes : Network.node list; top : string; counter : int }

let input shape =
  {
    nodes =
      [
        {
          Network.node_name = "input";
          layer = Layer.Input { shape };
          bottoms = [];
          tops = [ "data" ];
        };
      ];
    top = "data";
    counter = 0;
  }

let append prefix layer t =
  let counter = t.counter + 1 in
  let name = Printf.sprintf "%s%d" prefix counter in
  {
    nodes =
      {
        Network.node_name = name;
        layer;
        bottoms = [ t.top ];
        tops = [ name ];
      }
      :: t.nodes;
    top = name;
    counter;
  }

let layer l t =
  let prefix = String.lowercase_ascii (Layer.name l) in
  append prefix l t

let conv ?(stride = 1) ?(pad = 0) ?(group = 1) ?(bias = true) ~num_output
    ~kernel_size t =
  append "conv"
    (Layer.Convolution { num_output; kernel_size; stride; pad; group; bias })
    t

let max_pool ~kernel_size ~stride t =
  append "pool" (Layer.Pooling { method_ = Layer.Max; kernel_size; stride }) t

let avg_pool ~kernel_size ~stride t =
  append "pool" (Layer.Pooling { method_ = Layer.Average; kernel_size; stride }) t

let global_avg_pool t = append "gap" (Layer.Global_pooling Layer.Average) t

let fc ?(bias = true) ~num_output t =
  append "fc" (Layer.Inner_product { num_output; bias }) t

let relu t = append "relu" (Layer.Activation Layer.Relu) t

let sigmoid t = append "sigmoid" (Layer.Activation Layer.Sigmoid) t

let tanh t = append "tanh" (Layer.Activation Layer.Tanh) t

let lrn ?(local_size = 5) ?(alpha = 1e-4) ?(beta = 0.75) ?(k = 1.0) t =
  append "norm" (Layer.Lrn { local_size; alpha; beta; k }) t

let lcn ?(window = 5) ?(epsilon = 0.01) t =
  append "lcn" (Layer.Lcn { window; epsilon }) t

let dropout ?(ratio = 0.5) t = append "drop" (Layer.Dropout { ratio }) t

let softmax t = append "prob" Layer.Softmax t

let recurrent ?(bias = true) ~num_output ~steps t =
  append "rec" (Layer.Recurrent { num_output; steps; bias }) t

let associative ?(active_cells = 3) ~cells_per_dim t =
  append "assoc" (Layer.Associative { cells_per_dim; active_cells }) t

let classifier ~top_k t = append "cls" (Layer.Classifier { top_k }) t

let build ~name t = Network.create ~name (List.rev t.nodes)
