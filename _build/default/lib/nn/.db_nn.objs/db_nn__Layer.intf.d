lib/nn/layer.mli: Db_tensor Format
