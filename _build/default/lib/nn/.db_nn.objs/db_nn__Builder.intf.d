lib/nn/builder.mli: Db_tensor Layer Network
