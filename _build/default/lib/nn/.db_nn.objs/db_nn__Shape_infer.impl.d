lib/nn/shape_infer.ml: Db_tensor Db_util Layer List Network
