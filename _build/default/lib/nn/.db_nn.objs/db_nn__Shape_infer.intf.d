lib/nn/shape_infer.mli: Db_tensor Layer Network
