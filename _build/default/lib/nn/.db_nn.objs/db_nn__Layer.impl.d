lib/nn/layer.ml: Db_tensor Format
