lib/nn/params.mli: Db_tensor Db_util Layer Network
