lib/nn/quantized.ml: Array Db_fixed Db_tensor Db_util Float Interpreter Layer List Network Params Stdlib
