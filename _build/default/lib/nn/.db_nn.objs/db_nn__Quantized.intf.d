lib/nn/quantized.mli: Db_fixed Db_tensor Layer Network Params
