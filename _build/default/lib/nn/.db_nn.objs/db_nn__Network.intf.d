lib/nn/network.mli: Format Layer
