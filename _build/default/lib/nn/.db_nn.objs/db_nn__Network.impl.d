lib/nn/network.ml: Db_util Format Hashtbl Layer List Option Queue String
