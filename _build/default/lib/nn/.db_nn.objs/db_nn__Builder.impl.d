lib/nn/builder.ml: Layer List Network Printf String
