lib/nn/caffe.mli: Db_prototxt Network
