lib/nn/params.ml: Db_tensor Db_util Hashtbl Layer List Network Option Shape_infer
