lib/nn/interpreter.ml: Array Db_tensor Db_util Float Layer List Network Params Stdlib
