lib/nn/model_stats.ml: Db_tensor Float Format Layer List Network Params Shape_infer Stdlib
