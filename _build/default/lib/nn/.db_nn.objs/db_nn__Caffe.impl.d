lib/nn/caffe.ml: Db_prototxt Db_tensor Db_util Layer List Network Option String
