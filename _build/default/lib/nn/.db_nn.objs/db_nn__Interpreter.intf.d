lib/nn/interpreter.mli: Db_tensor Layer Network Params
