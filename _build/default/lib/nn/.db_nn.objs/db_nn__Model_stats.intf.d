lib/nn/model_stats.mli: Format Layer Network
