(** Static shape inference over a network's blobs. *)

type t
(** Map from blob name to its inferred shape. *)

val infer : Network.t -> t
(** Walks the network in topological order, checking layer-specific
    constraints (kernel fits inside input, channel divisibility for groups,
    matching spatial extents for [Concat], ...).  Raises
    {!Db_util.Error.Deepburning_error} on any inconsistency. *)

val blob_shape : t -> string -> Db_tensor.Shape.t
(** Raises [Not_found] for an unknown blob. *)

val layer_output_shape :
  Layer.t -> Db_tensor.Shape.t list -> Db_tensor.Shape.t
(** Output shape of one layer given its bottom shapes (the reusable core of
    {!infer}). *)

val all_blobs : t -> (string * Db_tensor.Shape.t) list
(** In insertion (topological) order. *)
