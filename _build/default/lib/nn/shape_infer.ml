module Shape = Db_tensor.Shape

type t = (string * Shape.t) list ref

let fail fmt = Db_util.Error.failf_at ~component:"shape-infer" fmt

let one_bottom layer = function
  | [ s ] -> s
  | shapes ->
      fail "layer %s expects exactly one bottom, got %d" (Layer.name layer)
        (List.length shapes)

let layer_output_shape layer bottoms =
  match layer with
  | Layer.Input { shape } -> shape
  | Layer.Convolution { num_output; kernel_size; stride; pad; group; bias = _ } ->
      let s = one_bottom layer bottoms in
      if Shape.rank s <> 3 then
        fail "convolution needs a CHW bottom, got %s" (Shape.to_string s);
      let cin = Shape.channels s in
      if cin mod group <> 0 then
        fail "convolution group %d does not divide input channels %d" group cin;
      if num_output mod group <> 0 then
        fail "convolution group %d does not divide num_output %d" group num_output;
      let oh =
        Db_tensor.Ops.conv_output_dim ~input:(Shape.height s) ~kernel:kernel_size
          ~stride ~pad_lo:pad ~pad_hi:pad
      and ow =
        Db_tensor.Ops.conv_output_dim ~input:(Shape.width s) ~kernel:kernel_size
          ~stride ~pad_lo:pad ~pad_hi:pad
      in
      Shape.chw ~channels:num_output ~height:oh ~width:ow
  | Layer.Pooling { method_ = _; kernel_size; stride } ->
      let s = one_bottom layer bottoms in
      if Shape.rank s <> 3 then
        fail "pooling needs a CHW bottom, got %s" (Shape.to_string s);
      let oh =
        Db_tensor.Ops.conv_output_dim ~input:(Shape.height s) ~kernel:kernel_size
          ~stride ~pad_lo:0 ~pad_hi:0
      and ow =
        Db_tensor.Ops.conv_output_dim ~input:(Shape.width s) ~kernel:kernel_size
          ~stride ~pad_lo:0 ~pad_hi:0
      in
      Shape.chw ~channels:(Shape.channels s) ~height:oh ~width:ow
  | Layer.Global_pooling _ ->
      let s = one_bottom layer bottoms in
      if Shape.rank s <> 3 then
        fail "global pooling needs a CHW bottom, got %s" (Shape.to_string s);
      Shape.vector (Shape.channels s)
  | Layer.Inner_product { num_output; bias = _ } ->
      let (_ : Shape.t) = one_bottom layer bottoms in
      Shape.vector num_output
  | Layer.Activation _ | Layer.Dropout _ | Layer.Softmax ->
      one_bottom layer bottoms
  | Layer.Lrn _ ->
      let s = one_bottom layer bottoms in
      if Shape.rank s <> 3 then
        fail "LRN needs a CHW bottom, got %s" (Shape.to_string s);
      s
  | Layer.Lcn { window; epsilon } ->
      let s = one_bottom layer bottoms in
      if Shape.rank s <> 3 then
        fail "LCN needs a CHW bottom, got %s" (Shape.to_string s);
      if window <= 0 || window mod 2 = 0 then
        fail "LCN window must be odd and positive";
      if epsilon <= 0.0 then fail "LCN epsilon must be positive";
      s
  | Layer.Recurrent { num_output; steps; bias = _ } ->
      let (_ : Shape.t) = one_bottom layer bottoms in
      if steps <= 0 then fail "recurrent layer needs steps >= 1";
      Shape.vector num_output
  | Layer.Associative { cells_per_dim; active_cells } ->
      let s = one_bottom layer bottoms in
      if cells_per_dim <= 1 then fail "associative layer needs cells_per_dim >= 2";
      if active_cells <= 0 || active_cells > cells_per_dim then
        fail "associative layer needs 0 < active_cells <= cells_per_dim";
      Shape.vector (Shape.numel s * cells_per_dim)
  | Layer.Concat -> begin
      match bottoms with
      | [] | [ _ ] -> fail "concat needs at least two bottoms"
      | first :: _ ->
          List.iter
            (fun s ->
              if
                Shape.rank s <> 3
                || Shape.height s <> Shape.height first
                || Shape.width s <> Shape.width first
              then
                fail "concat bottoms must be CHW with equal spatial extents")
            bottoms;
          let channels =
            List.fold_left (fun acc s -> acc + Shape.channels s) 0 bottoms
          in
          Shape.chw ~channels ~height:(Shape.height first)
            ~width:(Shape.width first)
    end
  | Layer.Classifier { top_k } ->
      let s = one_bottom layer bottoms in
      if top_k <= 0 || top_k > Shape.numel s then
        fail "classifier top_k %d out of range for %s inputs" top_k
          (Shape.to_string s);
      Shape.vector top_k

let infer net =
  let table : t = ref [] in
  let shape_of blob =
    match List.assoc_opt blob !table with
    | Some s -> s
    | None -> fail "blob %S used before being produced" blob
  in
  Network.iter net (fun node ->
      let bottoms = List.map shape_of node.Network.bottoms in
      let out = layer_output_shape node.Network.layer bottoms in
      List.iter (fun top -> table := !table @ [ (top, out) ]) node.Network.tops);
  table

let blob_shape t blob =
  match List.assoc_opt blob !t with Some s -> s | None -> raise Not_found

let all_blobs t = !t
