(** Layer vocabulary of the DeepBurning model family.

    Covers every layer class the paper names (Section 3.1-3.2): convolution,
    pooling, full connection, recurrent, associative (CMAC), LRN, drop-out,
    activation functions, classification (k-sorter) and inception-style
    concatenation. *)

type pool_method = Max | Average

type activation =
  | Relu
  | Sigmoid
  | Tanh
  | Sign  (** hard threshold, used by Hopfield networks *)

type t =
  | Input of { shape : Db_tensor.Shape.t }
      (** Source of the network; produces the input blob. *)
  | Convolution of {
      num_output : int;
      kernel_size : int;
      stride : int;
      pad : int;
      group : int;
      bias : bool;
    }
  | Pooling of { method_ : pool_method; kernel_size : int; stride : int }
  | Global_pooling of pool_method
      (** NiN-style whole-map pooling down to one value per channel. *)
  | Inner_product of { num_output : int; bias : bool }
      (** Full-connection layer. *)
  | Activation of activation
  | Lrn of { local_size : int; alpha : float; beta : float; k : float }
  | Lcn of { window : int; epsilon : float }
      (** local contrast normalisation: subtract the spatial window mean
          and divide by the window's standard deviation (floored at
          [epsilon]), per channel.  The paper's "LRN/LCN layer" maps both
          onto the LRN unit. *)
  | Dropout of { ratio : float }
  | Softmax
  | Recurrent of { num_output : int; steps : int; bias : bool }
      (** Elman-style recurrence unrolled [steps] times:
          h <- tanh (w_in * x + w_rec * h + b), starting from h = 0.
          Hopfield networks map to this with symmetric [w_rec] (tanh
          saturates to the +-1 states), optionally followed by a {!Sign}
          activation to discretise. *)
  | Associative of { cells_per_dim : int; active_cells : int }
      (** CMAC tile-coding: quantises each input dimension into
          [cells_per_dim] cells and activates [active_cells] overlapping
          tilings; produces a sparse binary feature vector. *)
  | Concat  (** channel-wise concatenation of all bottoms (inception). *)
  | Classifier of { top_k : int }
      (** K-sorter classification layer: emits the indices of the [top_k]
          largest inputs, in decreasing order of value. *)

val name : t -> string
(** Human-readable layer-class name, e.g. ["CONVOLUTION"]. *)

val is_weighted : t -> bool
(** Whether the layer owns trainable parameters. *)

val activation_name : activation -> string

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
