type pool_method = Max | Average

type activation = Relu | Sigmoid | Tanh | Sign

type t =
  | Input of { shape : Db_tensor.Shape.t }
  | Convolution of {
      num_output : int;
      kernel_size : int;
      stride : int;
      pad : int;
      group : int;
      bias : bool;
    }
  | Pooling of { method_ : pool_method; kernel_size : int; stride : int }
  | Global_pooling of pool_method
  | Inner_product of { num_output : int; bias : bool }
  | Activation of activation
  | Lrn of { local_size : int; alpha : float; beta : float; k : float }
  | Lcn of { window : int; epsilon : float }
  | Dropout of { ratio : float }
  | Softmax
  | Recurrent of { num_output : int; steps : int; bias : bool }
  | Associative of { cells_per_dim : int; active_cells : int }
  | Concat
  | Classifier of { top_k : int }

let activation_name = function
  | Relu -> "RELU"
  | Sigmoid -> "SIGMOID"
  | Tanh -> "TANH"
  | Sign -> "SIGN"

let name = function
  | Input _ -> "INPUT"
  | Convolution _ -> "CONVOLUTION"
  | Pooling _ -> "POOLING"
  | Global_pooling _ -> "GLOBAL_POOLING"
  | Inner_product _ -> "INNER_PRODUCT"
  | Activation act -> activation_name act
  | Lrn _ -> "LRN"
  | Lcn _ -> "LCN"
  | Dropout _ -> "DROPOUT"
  | Softmax -> "SOFTMAX"
  | Recurrent _ -> "RECURRENT"
  | Associative _ -> "ASSOCIATIVE"
  | Concat -> "CONCAT"
  | Classifier _ -> "CLASSIFIER"

let is_weighted = function
  | Convolution _ | Inner_product _ | Recurrent _ -> true
  | Input _ | Pooling _ | Global_pooling _ | Activation _ | Lrn _ | Lcn _
  | Dropout _ | Softmax | Associative _ | Concat | Classifier _ ->
      false

let equal a b =
  match a, b with
  | Input { shape = sa }, Input { shape = sb } -> Db_tensor.Shape.equal sa sb
  | (a, b) -> a = b

let pp fmt t =
  match t with
  | Input { shape } ->
      Format.fprintf fmt "INPUT(%s)" (Db_tensor.Shape.to_string shape)
  | Convolution { num_output; kernel_size; stride; pad; group; bias } ->
      Format.fprintf fmt "CONV(out=%d k=%d s=%d p=%d g=%d%s)" num_output
        kernel_size stride pad group
        (if bias then "" else " nobias")
  | Pooling { method_; kernel_size; stride } ->
      Format.fprintf fmt "POOL(%s k=%d s=%d)"
        (match method_ with Max -> "max" | Average -> "ave")
        kernel_size stride
  | Global_pooling method_ ->
      Format.fprintf fmt "GLOBAL_POOL(%s)"
        (match method_ with Max -> "max" | Average -> "ave")
  | Inner_product { num_output; bias } ->
      Format.fprintf fmt "FC(out=%d%s)" num_output (if bias then "" else " nobias")
  | Activation act -> Format.pp_print_string fmt (activation_name act)
  | Lrn { local_size; alpha; beta; k } ->
      Format.fprintf fmt "LRN(n=%d a=%g b=%g k=%g)" local_size alpha beta k
  | Lcn { window; epsilon } ->
      Format.fprintf fmt "LCN(w=%d eps=%g)" window epsilon
  | Dropout { ratio } -> Format.fprintf fmt "DROPOUT(%g)" ratio
  | Softmax -> Format.pp_print_string fmt "SOFTMAX"
  | Recurrent { num_output; steps; bias } ->
      Format.fprintf fmt "RECURRENT(out=%d steps=%d%s)" num_output steps
        (if bias then "" else " nobias")
  | Associative { cells_per_dim; active_cells } ->
      Format.fprintf fmt "ASSOCIATIVE(cells=%d active=%d)" cells_per_dim
        active_cells
  | Concat -> Format.pp_print_string fmt "CONCAT"
  | Classifier { top_k } -> Format.fprintf fmt "CLASSIFIER(top%d)" top_k
