type node = {
  node_name : string;
  layer : Layer.t;
  bottoms : string list;
  tops : string list;
}

type t = { net_name : string; nodes : node list }

let fail fmt = Db_util.Error.failf_at ~component:"network" fmt

let check_unique what names =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem tbl n then fail "duplicate %s %S" what n
      else Hashtbl.add tbl n ())
    names

let expected_arity layer =
  match layer with
  | Layer.Input _ -> `Exactly 0
  | Layer.Concat -> `At_least 2
  | Layer.Convolution _ | Layer.Pooling _ | Layer.Global_pooling _
  | Layer.Inner_product _ | Layer.Activation _ | Layer.Lrn _ | Layer.Lcn _
  | Layer.Dropout _ | Layer.Softmax | Layer.Recurrent _ | Layer.Associative _
  | Layer.Classifier _ ->
      `Exactly 1

let check_arity node =
  let n = List.length node.bottoms in
  match expected_arity node.layer with
  | `Exactly k when n <> k ->
      fail "layer %S (%s) expects %d bottom(s), got %d" node.node_name
        (Layer.name node.layer) k n
  | `At_least k when n < k ->
      fail "layer %S (%s) expects at least %d bottoms, got %d" node.node_name
        (Layer.name node.layer) k n
  | `Exactly _ | `At_least _ -> ()

let topo_sort nodes =
  (* Kahn's algorithm over blob dependencies. *)
  let producer = Hashtbl.create 16 in
  List.iter
    (fun node -> List.iter (fun top -> Hashtbl.replace producer top node.node_name) node.tops)
    nodes;
  let by_name = Hashtbl.create 16 in
  List.iter (fun node -> Hashtbl.replace by_name node.node_name node) nodes;
  let deps node =
    List.filter_map
      (fun bottom ->
        match Hashtbl.find_opt producer bottom with
        | Some producer_name when producer_name <> node.node_name -> Some producer_name
        | Some _ | None -> None)
      node.bottoms
  in
  let in_degree = Hashtbl.create 16 in
  List.iter
    (fun node -> Hashtbl.replace in_degree node.node_name (List.length (deps node)))
    nodes;
  let dependants = Hashtbl.create 16 in
  List.iter
    (fun node ->
      List.iter
        (fun d ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt dependants d) in
          Hashtbl.replace dependants d (node.node_name :: existing))
        (deps node))
    nodes;
  let ready =
    Queue.of_seq
      (List.to_seq
         (List.filter_map
            (fun node ->
              if Hashtbl.find in_degree node.node_name = 0 then Some node.node_name
              else None)
            nodes))
  in
  let order = ref [] in
  while not (Queue.is_empty ready) do
    let name = Queue.pop ready in
    order := name :: !order;
    let followers = Option.value ~default:[] (Hashtbl.find_opt dependants name) in
    List.iter
      (fun f ->
        let d = Hashtbl.find in_degree f - 1 in
        Hashtbl.replace in_degree f d;
        if d = 0 then Queue.push f ready)
      followers
  done;
  if List.length !order <> List.length nodes then
    fail "the network graph contains a cycle over blobs";
  List.rev_map (Hashtbl.find by_name) !order

let create ~name nodes =
  if nodes = [] then fail "network %S has no layers" name;
  check_unique "layer name" (List.map (fun n -> n.node_name) nodes);
  check_unique "top blob" (List.concat_map (fun n -> n.tops) nodes);
  List.iter check_arity nodes;
  let produced = Hashtbl.create 16 in
  List.iter
    (fun node -> List.iter (fun top -> Hashtbl.replace produced top ()) node.tops)
    nodes;
  List.iter
    (fun node ->
      List.iter
        (fun bottom ->
          if not (Hashtbl.mem produced bottom) then
            fail "layer %S consumes unknown blob %S" node.node_name bottom)
        node.bottoms)
    nodes;
  let has_input =
    List.exists (fun n -> match n.layer with Layer.Input _ -> true | _ -> false) nodes
  in
  if not has_input then fail "network %S has no input layer" name;
  { net_name = name; nodes = topo_sort nodes }

let find_node t name = List.find (fun n -> n.node_name = name) t.nodes

let input_nodes t =
  List.filter (fun n -> match n.layer with Layer.Input _ -> true | _ -> false) t.nodes

let output_blobs t =
  let consumed = Hashtbl.create 16 in
  List.iter
    (fun node -> List.iter (fun b -> Hashtbl.replace consumed b ()) node.bottoms)
    t.nodes;
  List.concat_map
    (fun node -> List.filter (fun top -> not (Hashtbl.mem consumed top)) node.tops)
    t.nodes

let layer_count t =
  List.length
    (List.filter
       (fun n -> match n.layer with Layer.Input _ -> false | _ -> true)
       t.nodes)

let iter t f = List.iter f t.nodes

let fold t ~init ~f = List.fold_left f init t.nodes

let has_layer t pred = List.exists (fun n -> pred n.layer) t.nodes

let pp fmt t =
  Format.fprintf fmt "network %S:@." t.net_name;
  List.iter
    (fun node ->
      Format.fprintf fmt "  %-14s %a  [%s] -> [%s]@." node.node_name Layer.pp
        node.layer
        (String.concat ", " node.bottoms)
        (String.concat ", " node.tops))
    t.nodes
