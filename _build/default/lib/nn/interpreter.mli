(** Floating-point forward propagation: the golden reference the paper's
    accuracy experiment compares the accelerators against ("the original
    software neural networks executed on CPU"). *)

type env = (string * Db_tensor.Tensor.t) list
(** Blob environment after a forward pass, in production order. *)

val forward :
  Network.t -> Params.t -> inputs:(string * Db_tensor.Tensor.t) list -> env
(** [forward net params ~inputs] runs the whole network.  [inputs] maps each
    input node's top blob to its tensor.  Raises
    {!Db_util.Error.Deepburning_error} on a missing input or shape
    mismatch. *)

val output :
  Network.t -> Params.t -> inputs:(string * Db_tensor.Tensor.t) list ->
  Db_tensor.Tensor.t
(** Convenience: the tensor of the network's single output blob.  Fails if
    the network has several outputs. *)

val eval_layer :
  Layer.t ->
  params:Db_tensor.Tensor.t list ->
  bottoms:Db_tensor.Tensor.t list ->
  Db_tensor.Tensor.t
(** One layer's semantics; reused by the trainer and the tests. *)

val associative_encode :
  cells_per_dim:int -> active_cells:int -> Db_tensor.Tensor.t -> Db_tensor.Tensor.t
(** CMAC tile-coding used by [Associative] layers: each input dimension is
    clamped to [0,1], quantised into [cells_per_dim] cells, and the
    [active_cells] cells centred on the hit are set to [1/active_cells]
    (clipped at the edges).  Exposed for direct testing. *)
