(** Trainable-parameter store: maps layer-node names to their tensors.

    Conventions for the tensor list of a weighted layer:
    - [Convolution]   : [weights (Cout, Cin/group, K, K)] then optional [bias (Cout)]
    - [Inner_product] : [weights (Nout, Nin)] then optional [bias (Nout)]
    - [Recurrent]     : [w_in (Nout, Nin)], [w_rec (Nout, Nout)], optional [bias (Nout)] *)

type t

val create : unit -> t

val set : t -> string -> Db_tensor.Tensor.t list -> unit

val get : t -> string -> Db_tensor.Tensor.t list
(** Returns [[]] for a layer without parameters. *)

val mem : t -> string -> bool

val expected_shapes :
  Layer.t -> bottom:Db_tensor.Shape.t -> Db_tensor.Shape.t list
(** Shapes the layer's parameter tensors must have given its bottom shape;
    [[]] for unweighted layers. *)

val init_xavier : Db_util.Rng.t -> Network.t -> t
(** Glorot-uniform initialisation of every weighted layer (biases zero). *)

val validate : Network.t -> t -> unit
(** Checks that every weighted node has tensors of the expected shapes.
    Raises {!Db_util.Error.Deepburning_error} otherwise. *)

val count_parameters : Network.t -> t -> int
(** Total scalar parameter count. *)

val iter : t -> (string -> Db_tensor.Tensor.t list -> unit) -> unit

val copy : t -> t
(** Deep copy (fresh tensor buffers). *)
