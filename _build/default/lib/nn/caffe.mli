(** Conversion between the Caffe-compatible descriptive script (Fig. 4 of
    the paper) and the typed {!Network.t} representation.

    Recognised layer [type] enums: [INPUT], [CONVOLUTION], [POOLING],
    [GLOBAL_POOLING], [INNER_PRODUCT], [RELU], [SIGMOID], [TANH], [SIGN],
    [LRN], [DROPOUT], [SOFTMAX], [RECURRENT], [ASSOCIATIVE], [CONCAT],
    [CLASSIFIER].  Parameter sub-messages follow Caffe naming
    ([convolution_param], [pooling_param], ...).  The DeepBurning
    [connect { direction: recurrent }] extension is accepted and checked
    for consistency with [RECURRENT] layers. *)

val import : Db_prototxt.Ast.document -> Network.t
(** Raises {!Db_util.Error.Deepburning_error} on an unknown layer type or a
    missing mandatory parameter. *)

val import_string : string -> Network.t
(** Parse then {!import}. *)

val export : Network.t -> Db_prototxt.Ast.document
(** Inverse of {!import} up to field ordering; [import (export n)]
    reproduces [n]. *)

val export_string : Network.t -> string
