module Tensor = Db_tensor.Tensor
module Shape = Db_tensor.Shape

type t = (string, Tensor.t list) Hashtbl.t

let create () = Hashtbl.create 16

let set t name tensors = Hashtbl.replace t name tensors

let get t name = Option.value ~default:[] (Hashtbl.find_opt t name)

let mem t name = Hashtbl.mem t name

let fail fmt = Db_util.Error.failf_at ~component:"params" fmt

let expected_shapes layer ~bottom =
  match layer with
  | Layer.Convolution { num_output; kernel_size; group; bias; _ } ->
      let cin_g = Shape.channels bottom / group in
      let w = Shape.of_list [ num_output; cin_g; kernel_size; kernel_size ] in
      if bias then [ w; Shape.vector num_output ] else [ w ]
  | Layer.Inner_product { num_output; bias } ->
      let w = Shape.of_list [ num_output; Shape.numel bottom ] in
      if bias then [ w; Shape.vector num_output ] else [ w ]
  | Layer.Recurrent { num_output; bias; _ } ->
      let w_in = Shape.of_list [ num_output; Shape.numel bottom ] in
      let w_rec = Shape.of_list [ num_output; num_output ] in
      if bias then [ w_in; w_rec; Shape.vector num_output ]
      else [ w_in; w_rec ]
  | Layer.Input _ | Layer.Pooling _ | Layer.Global_pooling _
  | Layer.Activation _ | Layer.Lrn _ | Layer.Lcn _ | Layer.Dropout _
  | Layer.Softmax | Layer.Associative _ | Layer.Concat | Layer.Classifier _ ->
      []

let fan_in_out shape =
  match Shape.to_list shape with
  | [ nout; nin ] -> (nin, nout)
  | [ cout; cin; kh; kw ] -> (cin * kh * kw, cout * kh * kw)
  | dims ->
      let n = List.fold_left ( * ) 1 dims in
      (n, n)

let with_bottoms net f =
  let shapes = Shape_infer.infer net in
  Network.iter net (fun node ->
      match node.Network.bottoms with
      | [ bottom ] -> f node (Shape_infer.blob_shape shapes bottom)
      | [] | _ :: _ :: _ -> ())

let init_xavier rng net =
  let t = create () in
  with_bottoms net (fun node bottom ->
      let shapes = expected_shapes node.Network.layer ~bottom in
      if shapes <> [] then begin
        let n_weight_tensors =
          match node.Network.layer with
          | Layer.Recurrent { bias; _ } -> if bias then 2 else List.length shapes
          | Layer.Convolution { bias; _ } | Layer.Inner_product { bias; _ } ->
              if bias then 1 else List.length shapes
          | Layer.Input _ | Layer.Pooling _ | Layer.Global_pooling _
          | Layer.Activation _ | Layer.Lrn _ | Layer.Lcn _ | Layer.Dropout _
          | Layer.Softmax | Layer.Associative _ | Layer.Concat
          | Layer.Classifier _ ->
              List.length shapes
        in
        let tensors =
          List.mapi
            (fun i shape ->
              if i < n_weight_tensors then begin
                let fan_in, fan_out = fan_in_out shape in
                let bound = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
                Tensor.random_uniform rng shape ~min:(-.bound) ~max:bound
              end
              else Tensor.create shape)
            shapes
        in
        set t node.Network.node_name tensors
      end);
  t

let validate net t =
  with_bottoms net (fun node bottom ->
      let expected = expected_shapes node.Network.layer ~bottom in
      if expected <> [] then begin
        let actual = get t node.Network.node_name in
        if List.length actual <> List.length expected then
          fail "layer %S: expected %d parameter tensors, found %d"
            node.Network.node_name (List.length expected) (List.length actual);
        List.iteri
          (fun i (exp_shape : Shape.t) ->
            let act_shape = Tensor.shape (List.nth actual i) in
            if not (Shape.equal exp_shape act_shape) then
              fail "layer %S parameter %d: expected shape %s, found %s"
                node.Network.node_name i (Shape.to_string exp_shape)
                (Shape.to_string act_shape))
          expected
      end)

let count_parameters net t =
  Network.fold net ~init:0 ~f:(fun acc node ->
      List.fold_left
        (fun acc tensor -> acc + Tensor.numel tensor)
        acc
        (get t node.Network.node_name))

let iter t f = Hashtbl.iter f t

let copy t =
  let fresh = create () in
  Hashtbl.iter (fun name tensors -> Hashtbl.replace fresh name (List.map Tensor.copy tensors)) t;
  fresh
