module Ast = Db_prototxt.Ast
module Shape = Db_tensor.Shape

let fail fmt = Db_util.Error.failf_at ~component:"caffe" fmt

let pool_method_of_enum name = function
  | "MAX" -> Layer.Max
  | "AVE" | "AVERAGE" -> Layer.Average
  | other -> fail "layer %S: unknown pooling method %S" name other

let import_layer name type_enum fields =
  match String.uppercase_ascii type_enum with
  | "INPUT" -> begin
      match Ast.opt_message fields "input_param" with
      | Some p -> begin
          match Ast.ints p "dim" with
          | [] -> fail "layer %S: input_param needs at least one dim" name
          | dims -> Layer.Input { shape = Shape.of_list dims }
        end
      | None -> fail "layer %S: INPUT requires input_param { dim: ... }" name
    end
  | "CONVOLUTION" ->
      let p =
        match Ast.opt_message fields "convolution_param" with
        | Some p -> p
        | None -> begin
            (* Fig. 4 of the paper uses a bare [param { ... }] block. *)
            match Ast.opt_message fields "param" with
            | Some p -> p
            | None -> fail "layer %S: missing convolution_param" name
          end
      in
      Layer.Convolution
        {
          num_output = Ast.find_int p "num_output";
          kernel_size = Ast.find_int p "kernel_size";
          stride = Option.value ~default:1 (Ast.opt_int p "stride");
          pad = Option.value ~default:0 (Ast.opt_int p "pad");
          group = Option.value ~default:1 (Ast.opt_int p "group");
          bias =
            (match Ast.opt_enum p "bias_term" with
            | Some "false" -> false
            | Some _ | None -> true);
        }
  | "POOLING" ->
      let p =
        match Ast.opt_message fields "pooling_param" with
        | Some p -> p
        | None -> fail "layer %S: missing pooling_param" name
      in
      Layer.Pooling
        {
          method_ =
            (match Ast.opt_enum p "pool" with
            | Some m -> pool_method_of_enum name m
            | None -> Layer.Max);
          kernel_size = Ast.find_int p "kernel_size";
          stride = Option.value ~default:1 (Ast.opt_int p "stride");
        }
  | "GLOBAL_POOLING" ->
      let method_ =
        match Ast.opt_message fields "pooling_param" with
        | Some p -> begin
            match Ast.opt_enum p "pool" with
            | Some m -> pool_method_of_enum name m
            | None -> Layer.Average
          end
        | None -> Layer.Average
      in
      Layer.Global_pooling method_
  | "INNER_PRODUCT" | "FULL_CONNECTION" ->
      let p =
        match Ast.opt_message fields "inner_product_param" with
        | Some p -> p
        | None -> fail "layer %S: missing inner_product_param" name
      in
      Layer.Inner_product
        {
          num_output = Ast.find_int p "num_output";
          bias =
            (match Ast.opt_enum p "bias_term" with
            | Some "false" -> false
            | Some _ | None -> true);
        }
  | "RELU" -> Layer.Activation Layer.Relu
  | "SIGMOID" -> Layer.Activation Layer.Sigmoid
  | "TANH" -> Layer.Activation Layer.Tanh
  | "SIGN" -> Layer.Activation Layer.Sign
  | "LRN" ->
      let p = Option.value ~default:[] (Ast.opt_message fields "lrn_param") in
      Layer.Lrn
        {
          local_size = Option.value ~default:5 (Ast.opt_int p "local_size");
          alpha = Option.value ~default:1e-4 (Ast.opt_float p "alpha");
          beta = Option.value ~default:0.75 (Ast.opt_float p "beta");
          k = Option.value ~default:1.0 (Ast.opt_float p "k");
        }
  | "LCN" ->
      let p = Option.value ~default:[] (Ast.opt_message fields "lcn_param") in
      Layer.Lcn
        {
          window = Option.value ~default:5 (Ast.opt_int p "window");
          epsilon = Option.value ~default:0.01 (Ast.opt_float p "epsilon");
        }
  | "DROPOUT" ->
      let p =
        Option.value ~default:[] (Ast.opt_message fields "dropout_param")
      in
      Layer.Dropout
        { ratio = Option.value ~default:0.5 (Ast.opt_float p "dropout_ratio") }
  | "SOFTMAX" -> Layer.Softmax
  | "RECURRENT" ->
      let p =
        match Ast.opt_message fields "recurrent_param" with
        | Some p -> p
        | None -> fail "layer %S: missing recurrent_param" name
      in
      Layer.Recurrent
        {
          num_output = Ast.find_int p "num_output";
          steps = Option.value ~default:1 (Ast.opt_int p "steps");
          bias =
            (match Ast.opt_enum p "bias_term" with
            | Some "false" -> false
            | Some _ | None -> true);
        }
  | "ASSOCIATIVE" ->
      let p =
        match Ast.opt_message fields "associative_param" with
        | Some p -> p
        | None -> fail "layer %S: missing associative_param" name
      in
      Layer.Associative
        {
          cells_per_dim = Ast.find_int p "cells_per_dim";
          active_cells = Option.value ~default:3 (Ast.opt_int p "active_cells");
        }
  | "CONCAT" -> Layer.Concat
  | "CLASSIFIER" ->
      let p =
        Option.value ~default:[] (Ast.opt_message fields "classifier_param")
      in
      Layer.Classifier { top_k = Option.value ~default:1 (Ast.opt_int p "top_k") }
  | other -> fail "layer %S: unknown layer type %S" name other

let check_connect name fields layer =
  match Ast.opt_message fields "connect" with
  | None -> ()
  | Some connect -> begin
      match Ast.opt_enum connect "direction" with
      | Some "recurrent" -> begin
          match layer with
          | Layer.Recurrent _ -> ()
          | _ ->
              fail
                "layer %S: connect { direction: recurrent } on a \
                 non-recurrent layer"
                name
        end
      | Some "forward" | None -> ()
      | Some other -> fail "layer %S: unknown connect direction %S" name other
    end

let import doc =
  let net_name =
    Option.value ~default:"network" (Ast.opt_string doc "name")
  in
  let layer_msgs = Ast.messages doc "layers" @ Ast.messages doc "layer" in
  if layer_msgs = [] then fail "document contains no layers { ... } blocks";
  let nodes =
    List.map
      (fun fields ->
        let name = Ast.find_string fields "name" in
        let type_enum = Ast.find_enum fields "type" in
        let layer = import_layer name type_enum fields in
        check_connect name fields layer;
        let bottoms = Ast.strings fields "bottom" in
        let tops =
          match Ast.strings fields "top" with
          | [] -> [ name ]  (* Caffe's in-place default: top = layer name *)
          | tops -> tops
        in
        { Network.node_name = name; layer; bottoms; tops })
      layer_msgs
  in
  Network.create ~name:net_name nodes

let import_string src = import (Db_prototxt.Parser.parse src)

let bias_field bias =
  if bias then [] else [ Ast.Scalar ("bias_term", Ast.Enum "false") ]

let export_layer layer =
  match layer with
  | Layer.Input { shape } ->
      ( "INPUT",
        [
          Ast.Message
            ( "input_param",
              List.map
                (fun d -> Ast.Scalar ("dim", Ast.Int d))
                (Shape.to_list shape) );
        ] )
  | Layer.Convolution { num_output; kernel_size; stride; pad; group; bias } ->
      ( "CONVOLUTION",
        [
          Ast.Message
            ( "convolution_param",
              [
                Ast.Scalar ("num_output", Ast.Int num_output);
                Ast.Scalar ("kernel_size", Ast.Int kernel_size);
                Ast.Scalar ("stride", Ast.Int stride);
                Ast.Scalar ("pad", Ast.Int pad);
                Ast.Scalar ("group", Ast.Int group);
              ]
              @ bias_field bias );
        ] )
  | Layer.Pooling { method_; kernel_size; stride } ->
      ( "POOLING",
        [
          Ast.Message
            ( "pooling_param",
              [
                Ast.Scalar
                  ( "pool",
                    Ast.Enum
                      (match method_ with Layer.Max -> "MAX" | Layer.Average -> "AVE")
                  );
                Ast.Scalar ("kernel_size", Ast.Int kernel_size);
                Ast.Scalar ("stride", Ast.Int stride);
              ] );
        ] )
  | Layer.Global_pooling method_ ->
      ( "GLOBAL_POOLING",
        [
          Ast.Message
            ( "pooling_param",
              [
                Ast.Scalar
                  ( "pool",
                    Ast.Enum
                      (match method_ with Layer.Max -> "MAX" | Layer.Average -> "AVE")
                  );
              ] );
        ] )
  | Layer.Inner_product { num_output; bias } ->
      ( "INNER_PRODUCT",
        [
          Ast.Message
            ( "inner_product_param",
              Ast.Scalar ("num_output", Ast.Int num_output) :: bias_field bias
            );
        ] )
  | Layer.Activation act -> (Layer.activation_name act, [])
  | Layer.Lrn { local_size; alpha; beta; k } ->
      ( "LRN",
        [
          Ast.Message
            ( "lrn_param",
              [
                Ast.Scalar ("local_size", Ast.Int local_size);
                Ast.Scalar ("alpha", Ast.Float alpha);
                Ast.Scalar ("beta", Ast.Float beta);
                Ast.Scalar ("k", Ast.Float k);
              ] );
        ] )
  | Layer.Lcn { window; epsilon } ->
      ( "LCN",
        [
          Ast.Message
            ( "lcn_param",
              [
                Ast.Scalar ("window", Ast.Int window);
                Ast.Scalar ("epsilon", Ast.Float epsilon);
              ] );
        ] )
  | Layer.Dropout { ratio } ->
      ( "DROPOUT",
        [
          Ast.Message
            ("dropout_param", [ Ast.Scalar ("dropout_ratio", Ast.Float ratio) ]);
        ] )
  | Layer.Softmax -> ("SOFTMAX", [])
  | Layer.Recurrent { num_output; steps; bias } ->
      ( "RECURRENT",
        [
          Ast.Message
            ( "recurrent_param",
              [
                Ast.Scalar ("num_output", Ast.Int num_output);
                Ast.Scalar ("steps", Ast.Int steps);
              ]
              @ bias_field bias );
          Ast.Message
            ( "connect",
              [ Ast.Scalar ("direction", Ast.Enum "recurrent") ] );
        ] )
  | Layer.Associative { cells_per_dim; active_cells } ->
      ( "ASSOCIATIVE",
        [
          Ast.Message
            ( "associative_param",
              [
                Ast.Scalar ("cells_per_dim", Ast.Int cells_per_dim);
                Ast.Scalar ("active_cells", Ast.Int active_cells);
              ] );
        ] )
  | Layer.Concat -> ("CONCAT", [])
  | Layer.Classifier { top_k } ->
      ( "CLASSIFIER",
        [
          Ast.Message ("classifier_param", [ Ast.Scalar ("top_k", Ast.Int top_k) ]);
        ] )

let export net =
  let header = [ Ast.Scalar ("name", Ast.String net.Network.net_name) ] in
  let layers =
    List.map
      (fun node ->
        let type_enum, params = export_layer node.Network.layer in
        let fields =
          [
            Ast.Scalar ("name", Ast.String node.Network.node_name);
            Ast.Scalar ("type", Ast.Enum type_enum);
          ]
          @ List.map (fun b -> Ast.Scalar ("bottom", Ast.String b)) node.Network.bottoms
          @ List.map (fun t -> Ast.Scalar ("top", Ast.String t)) node.Network.tops
          @ params
        in
        Ast.Message ("layers", fields))
      net.Network.nodes
  in
  header @ layers

let export_string net = Db_prototxt.Printer.print (export net)
