module Shape = Db_tensor.Shape

type layer_stat = {
  stat_node : string;
  stat_layer : Layer.t;
  macs : int;
  other_ops : int;
  param_count : int;
  input_bytes : int;
  output_bytes : int;
  weight_bytes : int;
}

type t = {
  per_layer : layer_stat list;
  total_macs : int;
  total_params : int;
  total_weight_bytes : int;
}

let layer_costs layer ~bottoms ~output =
  let out_n = Shape.numel output in
  match layer with
  | Layer.Input _ -> (0, 0)
  | Layer.Convolution { kernel_size; group; _ } -> begin
      match bottoms with
      | [ bottom ] ->
          let cin_g = Shape.channels bottom / group in
          (out_n * cin_g * kernel_size * kernel_size, 0)
      | [] | _ :: _ :: _ -> (0, 0)
    end
  | Layer.Pooling { kernel_size; _ } -> (0, out_n * kernel_size * kernel_size)
  | Layer.Global_pooling _ -> begin
      match bottoms with [ b ] -> (0, Shape.numel b) | [] | _ :: _ :: _ -> (0, 0)
    end
  | Layer.Inner_product _ -> begin
      match bottoms with
      | [ b ] -> (out_n * Shape.numel b, 0)
      | [] | _ :: _ :: _ -> (0, 0)
    end
  | Layer.Activation _ -> (0, out_n)
  | Layer.Lrn { local_size; _ } -> (out_n * local_size, 2 * out_n)
  | Layer.Lcn { window; _ } -> (2 * out_n * window * window, 2 * out_n)
  | Layer.Dropout _ -> (0, 0)
  | Layer.Softmax -> (0, 3 * out_n)
  | Layer.Recurrent { num_output; steps; _ } -> begin
      match bottoms with
      | [ b ] ->
          ( steps * ((num_output * Shape.numel b) + (num_output * num_output)),
            steps * num_output )
      | [] | _ :: _ :: _ -> (0, 0)
    end
  | Layer.Associative _ -> begin
      match bottoms with [ b ] -> (0, Shape.numel b) | [] | _ :: _ :: _ -> (0, 0)
    end
  | Layer.Concat -> (0, 0)
  | Layer.Classifier { top_k } -> begin
      (* k-sorter comparator count: n log k comparisons, roughly. *)
      match bottoms with
      | [ b ] ->
          let n = Shape.numel b in
          let log_k = int_of_float (Float.ceil (log (float_of_int (top_k + 1)) /. log 2.0)) in
          (0, n * Stdlib.max 1 log_k)
      | [] | _ :: _ :: _ -> (0, 0)
    end

let compute ?(bytes_per_word = 2) net =
  let shapes = Shape_infer.infer net in
  let per_layer =
    List.filter_map
      (fun node ->
        match node.Network.layer with
        | Layer.Input _ -> None
        | layer ->
            let bottoms =
              List.map (Shape_infer.blob_shape shapes) node.Network.bottoms
            in
            let output =
              Shape_infer.layer_output_shape layer bottoms
            in
            let macs, other_ops = layer_costs layer ~bottoms ~output in
            let param_count =
              match bottoms with
              | [ bottom ] ->
                  List.fold_left
                    (fun acc s -> acc + Shape.numel s)
                    0
                    (Params.expected_shapes layer ~bottom)
              | [] | _ :: _ :: _ -> 0
            in
            let input_numel =
              List.fold_left (fun acc s -> acc + Shape.numel s) 0 bottoms
            in
            Some
              {
                stat_node = node.Network.node_name;
                stat_layer = layer;
                macs;
                other_ops;
                param_count;
                input_bytes = input_numel * bytes_per_word;
                output_bytes = Shape.numel output * bytes_per_word;
                weight_bytes = param_count * bytes_per_word;
              })
      net.Network.nodes
  in
  {
    per_layer;
    total_macs = List.fold_left (fun a s -> a + s.macs) 0 per_layer;
    total_params = List.fold_left (fun a s -> a + s.param_count) 0 per_layer;
    total_weight_bytes = List.fold_left (fun a s -> a + s.weight_bytes) 0 per_layer;
  }

type decomposition = {
  has_conv : bool;
  has_fc : bool;
  has_act : bool;
  has_dropout : bool;
  has_lrn : bool;
  has_pooling : bool;
  has_associative : bool;
  has_recurrent : bool;
}

let decompose net =
  let has pred = Network.has_layer net pred in
  {
    has_conv = has (function Layer.Convolution _ -> true | _ -> false);
    has_fc = has (function Layer.Inner_product _ -> true | _ -> false);
    has_act =
      has (function Layer.Activation _ | Layer.Softmax -> true | _ -> false);
    has_dropout = has (function Layer.Dropout _ -> true | _ -> false);
    has_lrn = has (function Layer.Lrn _ -> true | _ -> false);
    has_pooling =
      has (function
        | Layer.Pooling _ | Layer.Global_pooling _ -> true
        | _ -> false);
    has_associative = has (function Layer.Associative _ -> true | _ -> false);
    has_recurrent = has (function Layer.Recurrent _ -> true | _ -> false);
  }

let pp fmt t =
  Format.fprintf fmt "%-16s %-28s %12s %10s@." "layer" "kind" "MACs" "params";
  List.iter
    (fun s ->
      Format.fprintf fmt "%-16s %-28s %12d %10d@." s.stat_node
        (Format.asprintf "%a" Layer.pp s.stat_layer)
        s.macs s.param_count)
    t.per_layer;
  Format.fprintf fmt "total MACs %d, total params %d@." t.total_macs
    t.total_params
