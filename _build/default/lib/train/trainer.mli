(** Mini-batch SGD training of sequential networks.

    The network must be a single chain (every non-input node has exactly
    one bottom, which is the previous node's top); this covers the paper's
    gradient-trained models.  Weights are updated in place inside the
    {!Db_nn.Params.t} store. *)

type sample = { input : Db_tensor.Tensor.t; target : Db_tensor.Tensor.t }

type config = {
  epochs : int;
  batch_size : int;
  learning_rate : float;
  momentum : float;
  weight_decay : float;
  loss : Loss.t;
}

val default_config : config
(** 20 epochs, batch 16, lr 0.05, momentum 0.9, no decay, MSE. *)

type history = {
  losses : float array;  (** mean training loss per epoch *)
  final_loss : float;
}

val train :
  ?config:config ->
  rng:Db_util.Rng.t ->
  Db_nn.Network.t ->
  Db_nn.Params.t ->
  sample array ->
  history
(** Raises {!Db_util.Error.Deepburning_error} if the network is not a
    supported sequential chain. *)

val mean_loss :
  loss:Loss.t -> Db_nn.Network.t -> Db_nn.Params.t -> sample array -> float

val classification_accuracy :
  Db_nn.Network.t -> Db_nn.Params.t -> (Db_tensor.Tensor.t * int) array -> float
(** Fraction of samples whose arg-max output equals the label. *)
