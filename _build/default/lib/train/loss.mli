(** Loss functions with gradients. *)

type t =
  | Mean_squared_error
  | Softmax_cross_entropy
      (** expects raw scores; combines the softmax with the cross-entropy
          so the backward pass is the numerically stable [p - y] *)

val forward : t -> prediction:Db_tensor.Tensor.t -> target:Db_tensor.Tensor.t -> float
(** Scalar loss.  For [Softmax_cross_entropy] the target must be a one-hot
    (or general probability) vector of the same length. *)

val backward :
  t -> prediction:Db_tensor.Tensor.t -> target:Db_tensor.Tensor.t -> Db_tensor.Tensor.t
(** Gradient of the loss w.r.t. the prediction (raw scores for
    [Softmax_cross_entropy]). *)

val one_hot : classes:int -> int -> Db_tensor.Tensor.t
