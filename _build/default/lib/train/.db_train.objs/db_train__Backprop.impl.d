lib/train/backprop.ml: Array Db_nn Db_tensor Db_util Stdlib
