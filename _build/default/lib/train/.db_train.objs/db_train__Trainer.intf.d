lib/train/trainer.mli: Db_nn Db_tensor Db_util Loss
