lib/train/trainer.ml: Array Backprop Db_nn Db_tensor Db_util Hashtbl List Loss Stdlib
