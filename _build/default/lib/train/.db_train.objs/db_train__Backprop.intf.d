lib/train/backprop.mli: Db_nn Db_tensor
