lib/train/loss.ml: Db_tensor Float
