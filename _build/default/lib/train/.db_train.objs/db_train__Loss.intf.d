lib/train/loss.mli: Db_tensor
