(** Reverse-mode gradients for the sequential (single-chain) subset of the
    layer vocabulary: convolution, pooling, global pooling, inner product,
    activations, dropout (identity at inference) and softmax.

    This covers every model the paper trains by gradient descent (the three
    AxBench ANNs, MNIST, Cifar-scale CNNs); Hopfield and CMAC weights are
    set by Hebbian / delta rules in [db_workloads]. *)

type cache
(** Values memoised by the forward pass for use in backward. *)

val forward_layer :
  layer:Db_nn.Layer.t ->
  params:Db_tensor.Tensor.t list ->
  input:Db_tensor.Tensor.t ->
  Db_tensor.Tensor.t * cache

val backward_layer :
  cache ->
  grad_output:Db_tensor.Tensor.t ->
  Db_tensor.Tensor.t option * Db_tensor.Tensor.t list
(** [backward_layer cache ~grad_output] is [(grad_input, grad_params)].
    [grad_input] is [None] for layers that cannot propagate (e.g.
    [Associative], whose inputs are data, never weights upstream).
    [grad_params] aligns with the layer's parameter list. *)

val supported : Db_nn.Layer.t -> bool
(** Whether this module can differentiate through the layer. *)
