type t = {
  net_name : string;
  datapath : Datapath.t;
  folds : Folding.fold list;
}

let build dp net =
  {
    net_name = net.Db_nn.Network.net_name;
    datapath = dp;
    folds = Folding.fold_network dp net;
  }

let fold_count t = List.length t.folds

let layer_folds t ~layer =
  List.filter (fun f -> f.Folding.fold_layer = layer) t.folds

let events t = List.map (fun f -> f.Folding.event) t.folds

let reconfigurations t =
  let rec boundaries prev = function
    | [] -> 0
    | f :: rest ->
        let here = if f.Folding.fold_layer <> prev then 1 else 0 in
        here + boundaries f.Folding.fold_layer rest
  in
  match t.folds with
  | [] -> 0
  | first :: rest -> boundaries first.Folding.fold_layer rest

let coordinator_fsm t =
  let fold_states = List.map (fun f -> "s_" ^ f.Folding.event) t.folds in
  let states = "idle" :: fold_states in
  let outputs = List.map (fun f -> "ev_" ^ f.Folding.event) t.folds in
  let rec transitions current = function
    | [] ->
        [
          {
            Db_hdl.Fsm.from_state = current;
            guard = Some "fold_done";
            to_state = "idle";
            actions = [];
          };
        ]
    | f :: rest ->
        {
          Db_hdl.Fsm.from_state = current;
          guard = Some "fold_done";
          to_state = "s_" ^ f.Folding.event;
          actions = [ "ev_" ^ f.Folding.event ];
        }
        :: transitions ("s_" ^ f.Folding.event) rest
  in
  (* The first transition fires on [start] instead of [fold_done]. *)
  let all =
    match t.folds with
    | [] -> []
    | first :: rest ->
        {
          Db_hdl.Fsm.from_state = "idle";
          guard = Some "start";
          to_state = "s_" ^ first.Folding.event;
          actions = [ "ev_" ^ first.Folding.event ];
        }
        :: transitions ("s_" ^ first.Folding.event) rest
  in
  let fsm =
    {
      Db_hdl.Fsm.fsm_name = "coordinator_" ^ t.net_name;
      states;
      initial = "idle";
      inputs = [ "start"; "fold_done" ];
      outputs;
      transitions = all;
    }
  in
  Db_hdl.Fsm.validate fsm;
  fsm

let pp fmt t =
  Format.fprintf fmt "schedule for %S (%d folds):@." t.net_name (fold_count t);
  let by_layer = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let key = f.Folding.fold_layer in
      let macs, ops, n =
        Option.value ~default:(0, 0, 0) (Hashtbl.find_opt by_layer key)
      in
      Hashtbl.replace by_layer key
        (macs + f.Folding.macs, ops + f.Folding.other_ops, n + 1))
    t.folds;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let key = f.Folding.fold_layer in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        let macs, ops, n = Hashtbl.find by_layer key in
        Format.fprintf fmt "  %-16s folds=%-6d macs=%-12d ops=%d@." key n macs
          ops
      end)
    t.folds
