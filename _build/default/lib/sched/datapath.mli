(** The scaled hardware structure NN-Gen settles on for a given model and
    constraint: how many synergy-neuron lanes, how wide each lane's SIMD
    multiplier bank is, the memory-port width and the on-chip buffer
    sizes.  Everything downstream (folding, AGU patterns, the simulator,
    the resource report) is a function of this record. *)

type t = {
  lanes : int;  (** parallel synergy neurons *)
  simd : int;  (** multipliers per neuron (MACs/cycle/lane) *)
  port_words : int;  (** on-chip buffer read width, words per cycle *)
  fmt : Db_fixed.Fixed.format;  (** datapath number format *)
  feature_buffer_words : int;
  weight_buffer_words : int;
  lut_entries : int;  (** Approx LUT size for activation functions *)
}

val make :
  ?simd:int ->
  ?port_words:int ->
  ?fmt:Db_fixed.Fixed.format ->
  ?feature_buffer_words:int ->
  ?weight_buffer_words:int ->
  ?lut_entries:int ->
  lanes:int ->
  unit ->
  t
(** Defaults: simd 1, port width 4 words, Q16.8, 8K-word feature buffer,
    8K-word weight buffer, 256-entry LUTs.  Raises [Invalid_argument] on
    non-positive values. *)

val macs_per_cycle : t -> int

val pp : Format.formatter -> t -> unit
