lib/sched/schedule.ml: Datapath Db_hdl Db_nn Folding Format Hashtbl List Option
