lib/sched/schedule.mli: Datapath Db_hdl Db_nn Folding Format
