lib/sched/datapath.ml: Db_fixed Format
