lib/sched/folding.ml: Datapath Db_nn Db_tensor Db_util Float List Printf Stdlib
