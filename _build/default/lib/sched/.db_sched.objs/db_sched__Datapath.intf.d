lib/sched/datapath.mli: Db_fixed Format
