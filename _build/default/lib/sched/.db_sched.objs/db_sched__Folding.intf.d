lib/sched/folding.mli: Datapath Db_nn Db_tensor
