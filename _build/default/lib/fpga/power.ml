type t = { static_w : float; dynamic_w : float; total_w : float }

(* Unit dynamic powers at 100 MHz, 50% activity.  Deliberately on the high
   side of the Xilinx XPE ballparks: the paper measures board-level power,
   which includes clock tree, AXI interconnect and I/O activity that scale
   with the occupied fabric. *)
let dsp_w = 4.0e-3
let lut_w = 15.0e-6
let ff_w = 8.0e-6
let bram36_w = 1.0e-3

let dynamic_of_resources ?(activity = 0.5) (r : Resource.t) ~clock_mhz =
  let freq_scale = clock_mhz /. 100.0 in
  let act_scale = activity /. 0.5 in
  let bram36 = float_of_int r.Resource.bram_bits /. (36.0 *. 1024.0) in
  freq_scale *. act_scale
  *. ((float_of_int r.Resource.dsps *. dsp_w)
     +. (float_of_int r.Resource.luts *. lut_w)
     +. (float_of_int r.Resource.ffs *. ff_w)
     +. (bram36 *. bram36_w))

let accelerator_power ?activity ~(device : Device.t) ~used ~clock_mhz () =
  let dynamic_w = dynamic_of_resources ?activity used ~clock_mhz in
  {
    static_w = device.static_power_w;
    dynamic_w;
    total_w = device.static_power_w +. dynamic_w;
  }

let energy_j t ~seconds = t.total_w *. seconds

let cpu_xeon_power_w = 95.0

let arm_host_power_w = 0.8
