(** FPGA resource vectors: LUTs, flip-flops, DSP slices and block RAM.

    Used both as capacities (what a device or budget offers) and as costs
    (what a configured building block consumes). *)

type t = { luts : int; ffs : int; dsps : int; bram_bits : int }

val zero : t

val make : ?luts:int -> ?ffs:int -> ?dsps:int -> ?bram_bits:int -> unit -> t

val add : t -> t -> t

val sum : t list -> t

val scale : int -> t -> t

val fits : t -> within:t -> bool
(** Component-wise [<=]. *)

val headroom : t -> within:t -> t
(** Component-wise remaining capacity (clamped at zero). *)

val utilisation : t -> within:t -> float
(** Largest component-wise usage ratio, in [0, +inf). *)

val fraction : float -> t -> t
(** [fraction f caps] scales every component by [f] (rounding down, but
    keeping at least 1 where the input was positive). *)

val pp : Format.formatter -> t -> unit
