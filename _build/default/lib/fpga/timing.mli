(** Clocking helpers: the generated accelerators run at a fixed operating
    frequency (100 MHz on the paper's board). *)

type t = { clock_mhz : float }

val at_mhz : float -> t

val default : t
(** 100 MHz. *)

val cycle_seconds : t -> float

val cycles_to_seconds : t -> int -> float

val cycles_to_ms : t -> int -> float

val seconds_to_cycles : t -> float -> int
(** Rounded up. *)
