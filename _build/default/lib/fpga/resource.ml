type t = { luts : int; ffs : int; dsps : int; bram_bits : int }

let zero = { luts = 0; ffs = 0; dsps = 0; bram_bits = 0 }

let make ?(luts = 0) ?(ffs = 0) ?(dsps = 0) ?(bram_bits = 0) () =
  { luts; ffs; dsps; bram_bits }

let add a b =
  {
    luts = a.luts + b.luts;
    ffs = a.ffs + b.ffs;
    dsps = a.dsps + b.dsps;
    bram_bits = a.bram_bits + b.bram_bits;
  }

let sum = List.fold_left add zero

let scale k t =
  {
    luts = k * t.luts;
    ffs = k * t.ffs;
    dsps = k * t.dsps;
    bram_bits = k * t.bram_bits;
  }

let fits t ~within =
  t.luts <= within.luts && t.ffs <= within.ffs && t.dsps <= within.dsps
  && t.bram_bits <= within.bram_bits

let headroom t ~within =
  {
    luts = Stdlib.max 0 (within.luts - t.luts);
    ffs = Stdlib.max 0 (within.ffs - t.ffs);
    dsps = Stdlib.max 0 (within.dsps - t.dsps);
    bram_bits = Stdlib.max 0 (within.bram_bits - t.bram_bits);
  }

let ratio used cap =
  if cap = 0 then if used = 0 then 0.0 else infinity
  else float_of_int used /. float_of_int cap

let utilisation t ~within =
  List.fold_left Float.max 0.0
    [
      ratio t.luts within.luts;
      ratio t.ffs within.ffs;
      ratio t.dsps within.dsps;
      ratio t.bram_bits within.bram_bits;
    ]

let fraction f t =
  let part x =
    if x = 0 then 0
    else Stdlib.max 1 (int_of_float (f *. float_of_int x))
  in
  {
    luts = part t.luts;
    ffs = part t.ffs;
    dsps = part t.dsps;
    bram_bits = part t.bram_bits;
  }

let pp fmt t =
  Format.fprintf fmt "{luts=%d; ffs=%d; dsps=%d; bram=%dKb}" t.luts t.ffs
    t.dsps (t.bram_bits / 1024)
