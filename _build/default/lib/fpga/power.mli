(** Analytic power model.

    Dynamic power scales with the resources that are actually toggling
    (unit energies chosen to land Zynq-class accelerators in the paper's
    reported envelope: a few hundred mW to a couple of W); energy is power
    integrated over the run time.  This substitutes for the board-level
    power measurements of the paper's evaluation. *)

type t = {
  static_w : float;
  dynamic_w : float;
  total_w : float;
}

val dynamic_of_resources : ?activity:float -> Resource.t -> clock_mhz:float -> float
(** Dynamic watts for the given toggling resources.  [activity] in [0,1]
    (default 0.5) scales the per-resource unit powers. *)

val accelerator_power :
  ?activity:float ->
  device:Device.t ->
  used:Resource.t ->
  clock_mhz:float ->
  unit ->
  t

val energy_j : t -> seconds:float -> float

val cpu_xeon_power_w : float
(** Active power of the Xeon 2.4 GHz baseline used in Figs. 8/9. *)

val arm_host_power_w : float
(** Cortex-A9 host managing the accelerator (included in board energy). *)
