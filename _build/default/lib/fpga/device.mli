(** FPGA device catalogue.

    Capacities follow the public Xilinx data sheets for the devices the
    paper evaluates on (Zynq-7045 and Zynq-7020) plus the Virtex-7 485T
    used by Zhang et al. FPGA'15, which appears as a comparison point. *)

type t = {
  device_name : string;
  capacity : Resource.t;
  default_clock_mhz : float;
  static_power_w : float;  (** device static power at nominal conditions *)
}

val zynq_7045 : t

val zynq_7020 : t

val virtex7_485t : t

val all : t list

val find : string -> t
(** Case-insensitive lookup by name.  Raises [Not_found]. *)
