lib/fpga/device.ml: List Resource String
