lib/fpga/power.ml: Device Resource
