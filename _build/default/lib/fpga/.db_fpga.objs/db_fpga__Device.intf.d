lib/fpga/device.mli: Resource
