lib/fpga/timing.ml: Float
