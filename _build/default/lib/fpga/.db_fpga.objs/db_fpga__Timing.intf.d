lib/fpga/timing.mli:
