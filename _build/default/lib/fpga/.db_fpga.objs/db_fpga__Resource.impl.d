lib/fpga/resource.ml: Float Format List Stdlib
