lib/fpga/power.mli: Device Resource
