type t = {
  device_name : string;
  capacity : Resource.t;
  default_clock_mhz : float;
  static_power_w : float;
}

let zynq_7045 =
  {
    device_name = "Zynq-7045";
    capacity =
      Resource.make ~luts:218600 ~ffs:437200 ~dsps:900
        ~bram_bits:(19620 * 1024) ();
    default_clock_mhz = 100.0;
    static_power_w = 0.24;
  }

let zynq_7020 =
  {
    device_name = "Zynq-7020";
    capacity =
      Resource.make ~luts:53200 ~ffs:106400 ~dsps:220 ~bram_bits:(5040 * 1024) ();
    default_clock_mhz = 100.0;
    static_power_w = 0.14;
  }

let virtex7_485t =
  {
    device_name = "Virtex7-485T";
    capacity =
      Resource.make ~luts:303600 ~ffs:607200 ~dsps:2800
        ~bram_bits:(37080 * 1024) ();
    default_clock_mhz = 100.0;
    static_power_w = 0.6;
  }

let all = [ zynq_7045; zynq_7020; virtex7_485t ]

let find name =
  let lower = String.lowercase_ascii name in
  List.find (fun d -> String.lowercase_ascii d.device_name = lower) all
