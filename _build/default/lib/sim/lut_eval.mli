(** Bridges the compiler's Approx LUT contents into the quantized
    interpreter's function evaluator: what the generated hardware actually
    computes for non-linear functions. *)

val of_luts : Db_blocks.Approx_lut.t list -> Db_nn.Quantized.function_eval
(** Sigmoid/tanh/exp/reciprocal/LRN-power go through their LUT when one is
    present (interpolated), and fall back to exact math otherwise.  ReLU
    and Sign stay exact — they are comparators in hardware, not tables.
    The reciprocal is range-reduced by a power of two into the table's
    [1, 2) binade (a leading-zero count plus a shift in the RTL). *)
