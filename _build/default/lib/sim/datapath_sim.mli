(** Bit-accurate, cycle-accurate microsimulation of the MAC datapath.

    Executes one full-connection-style fold exactly as the lowered RTL
    would: the feature buffer broadcasts up to [port_words] words per cycle
    to all lanes, each lane's [simd] multipliers produce full-width
    products, an adder tree (one register stage per level) feeds a wide
    accumulator, and the result is rescaled and saturated once at the end
    — the same arithmetic as {!Db_nn.Quantized}, now with cycle timing.

    This is the link between the analytic performance model and the
    emitted Verilog: tests check the outputs equal the quantized
    interpreter's bit-for-bit and the cycle counts match the closed
    form. *)

type config = {
  lanes : int;
  simd : int;
  port_words : int;  (** feature-broadcast words per cycle *)
  fmt : Db_fixed.Fixed.format;
}

type result = {
  outputs : int array;  (** one Q-format word per lane *)
  cycles : int;  (** issue + pipeline-drain cycles for the fold *)
}

val fc_fold :
  config ->
  features:int array ->
  weights:int array array ->
  bias:int array option ->
  result
(** [fc_fold cfg ~features ~weights ~bias] computes, for each lane [l],
    [rescale (bias.(l) << frac + sum_i features.(i) * weights.(l).(i))].
    [weights] has one row per active lane (at most [cfg.lanes]); every row
    must have [Array.length features] columns.  Raises
    {!Db_util.Error.Deepburning_error} on shape errors. *)

val issue_cycles : config -> nin:int -> int
(** Closed-form issue cycles: ceil(nin / simd) beats, each stretched by
    the feature-port bottleneck ceil(simd / port_words). *)

val pipeline_depth : config -> int
(** Multiplier stage + adder-tree stages + accumulator stage. *)
