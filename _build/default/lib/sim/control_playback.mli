(** Control-path playback: execute the generated run-time control end to
    end and verify its memory safety.

    The coordinator FSM is stepped through every fold event in schedule
    order; for each fold, every compiled AGU transfer is replayed on the
    cycle-accurate {!Db_mem.Agu_sim} machine, and each issued address is
    checked against the DRAM layout region it is supposed to touch
    (feature fetches inside the input blob, weight streams inside the
    node's weight entries, write-backs inside the output blob).

    This is the strongest check the repository makes on the compiler's
    output: a wrong stride, cursor or offset in any generated pattern
    shows up as a violation here. *)

type result = {
  folds_executed : int;
  addresses_issued : int;
  agu_cycles : int;  (** total address-issue cycles across all transfers *)
  violations : string list;  (** human-readable, empty when safe *)
}

val playback : Db_core.Design.t -> result

val verify : Db_core.Design.t -> unit
(** Raises {!Db_util.Error.Deepburning_error} listing the first violation
    if any address escapes its region or the coordinator trace diverges
    from the schedule. *)
