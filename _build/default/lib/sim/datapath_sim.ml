module Fixed = Db_fixed.Fixed

type config = {
  lanes : int;
  simd : int;
  port_words : int;
  fmt : Fixed.format;
}

type result = { outputs : int array; cycles : int }

let fail fmt = Db_util.Error.failf_at ~component:"datapath-sim" fmt

let div_ceil a b = (a + b - 1) / b

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let pipeline_depth cfg = 1 + log2_ceil cfg.simd + 1

let issue_cycles cfg ~nin =
  div_ceil nin cfg.simd * Stdlib.max 1 (div_ceil cfg.simd cfg.port_words)

(* One lane's pipeline: products enter the tree, each tree level is a
   register stage, the accumulator adds the tree's output one cycle later.
   Represented as a shift queue of pending partial sums. *)
type lane = {
  weights : int array;
  mutable acc : int;  (** wide accumulator, 2*frac fractional bits *)
  pipe : int Queue.t;  (** sums in flight through the tree stages *)
}

let fc_fold cfg ~features ~weights ~bias =
  if Array.length weights = 0 || Array.length weights > cfg.lanes then
    fail "fc_fold: %d weight rows for %d lanes" (Array.length weights) cfg.lanes;
  let nin = Array.length features in
  Array.iter
    (fun row ->
      if Array.length row <> nin then
        fail "fc_fold: weight row length %d, expected %d" (Array.length row) nin)
    weights;
  (match bias with
  | Some b when Array.length b <> Array.length weights ->
      fail "fc_fold: bias length mismatch"
  | Some _ | None -> ());
  let frac = cfg.fmt.Fixed.frac_bits in
  let lanes =
    Array.mapi
      (fun l row ->
        {
          weights = row;
          acc = (match bias with Some b -> b.(l) lsl frac | None -> 0);
          pipe = Queue.create ();
        })
      weights
  in
  let depth = pipeline_depth cfg in
  let stall = Stdlib.max 1 (div_ceil cfg.simd cfg.port_words) in
  let cycles = ref 0 in
  let issued = ref 0 in
  (* Issue phase: every [stall] cycles, each lane multiplies the next
     [simd] feature/weight pairs and pushes the tree sum into its pipe. *)
  while !issued < nin do
    let batch = Stdlib.min cfg.simd (nin - !issued) in
    Array.iter
      (fun lane ->
        let sum = ref 0 in
        for i = !issued to !issued + batch - 1 do
          sum := !sum + (features.(i) * lane.weights.(i))
        done;
        Queue.push !sum lane.pipe;
        (* Tree sums older than the pipeline depth land in the
           accumulator. *)
        if Queue.length lane.pipe > depth - 1 then
          lane.acc <- lane.acc + Queue.pop lane.pipe)
      lanes;
    issued := !issued + batch;
    cycles := !cycles + stall
  done;
  (* Drain phase: flush the remaining in-flight sums. *)
  let max_inflight =
    Array.fold_left (fun m lane -> Stdlib.max m (Queue.length lane.pipe)) 0 lanes
  in
  Array.iter
    (fun lane ->
      while not (Queue.is_empty lane.pipe) do
        lane.acc <- lane.acc + Queue.pop lane.pipe
      done)
    lanes;
  cycles := !cycles + max_inflight + 1 (* +1: rescale/writeback beat *);
  let half = if frac = 0 then 0 else 1 lsl (frac - 1) in
  let outputs =
    Array.map
      (fun lane ->
        let acc = lane.acc in
        let rounded =
          if frac = 0 then acc
          else if acc >= 0 then (acc + half) asr frac
          else -((-acc + half) asr frac)
        in
        Fixed.saturate cfg.fmt rounded)
      lanes
  in
  { outputs; cycles = !cycles }
