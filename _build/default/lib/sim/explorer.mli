(** Design-space exploration over the generator.

    The paper's case for FPGAs is fast iteration over candidate designs;
    this module automates the sweep NN-Gen's configuration search walks
    implicitly: evaluate a model at many lane counts (and optionally many
    budgets), collect latency/resource/energy points and extract the
    Pareto frontier a designer would choose from. *)

type point = {
  pt_lanes : int;
  pt_seconds : float;
  pt_energy_j : float;
  pt_resources : Db_fpga.Resource.t;
  pt_fits_budget : bool;
}

val sweep_lanes :
  Db_core.Constraints.t -> Db_nn.Network.t -> lanes:int list -> point list
(** Generate and simulate the model at each lane count (budget *not*
    enforced — points that overflow are flagged via [pt_fits_budget]). *)

val pareto : point list -> point list
(** The latency/LUT non-dominated subset, sorted by latency.  A point is
    dominated when another is at least as fast *and* at least as small. *)

val best_under_budget : point list -> point option
(** Fastest point that fits its budget. *)
