lib/sim/simulator.mli: Db_core Db_fpga Db_mem Db_nn Db_tensor Format
