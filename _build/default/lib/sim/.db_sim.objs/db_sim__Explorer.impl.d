lib/sim/explorer.ml: Db_core Db_fpga List Simulator
