lib/sim/training_sim.ml: Db_core Db_fixed Db_fpga Db_mem Db_nn Db_sched List Simulator
