lib/sim/control_playback.ml: Db_core Db_hdl Db_mem Db_nn Db_sched Db_util List Printf Stdlib
