lib/sim/simulator.ml: Array Db_core Db_fixed Db_fpga Db_hdl Db_mem Db_nn Db_sched Format Hashtbl List Lut_eval Option Perf_model Stdlib
