lib/sim/perf_model.mli: Db_core Db_mem Db_sched
