lib/sim/lut_eval.mli: Db_blocks Db_nn
