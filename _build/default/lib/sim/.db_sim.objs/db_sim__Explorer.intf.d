lib/sim/explorer.mli: Db_core Db_fpga Db_nn
