lib/sim/datapath_sim.ml: Array Db_fixed Db_util Queue Stdlib
