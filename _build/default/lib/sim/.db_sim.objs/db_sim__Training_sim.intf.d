lib/sim/training_sim.mli: Db_core Db_mem
