lib/sim/datapath_sim.mli: Db_fixed
