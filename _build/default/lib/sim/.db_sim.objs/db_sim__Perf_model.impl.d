lib/sim/perf_model.ml: Db_core Db_mem Db_sched Float List Stdlib
