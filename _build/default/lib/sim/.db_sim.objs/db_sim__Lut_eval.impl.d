lib/sim/lut_eval.ml: Db_blocks Db_nn Float List
