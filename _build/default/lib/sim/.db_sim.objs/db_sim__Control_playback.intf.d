lib/sim/control_playback.mli: Db_core
