module Resource = Db_fpga.Resource

type point = {
  pt_lanes : int;
  pt_seconds : float;
  pt_energy_j : float;
  pt_resources : Resource.t;
  pt_fits_budget : bool;
}

let sweep_lanes cons net ~lanes =
  List.map
    (fun n ->
      let design = Db_core.Generator.generate_with_lanes cons net ~lanes:n in
      let report = Simulator.timing design in
      let used = Db_core.Design.resource_usage design in
      {
        pt_lanes = n;
        pt_seconds = report.Simulator.seconds;
        pt_energy_j = report.Simulator.energy_j;
        pt_resources = used;
        pt_fits_budget =
          Resource.fits used ~within:cons.Db_core.Constraints.budget;
      })
    lanes

let dominates a b =
  a.pt_seconds <= b.pt_seconds
  && a.pt_resources.Resource.luts <= b.pt_resources.Resource.luts
  && (a.pt_seconds < b.pt_seconds
     || a.pt_resources.Resource.luts < b.pt_resources.Resource.luts)

let pareto points =
  let non_dominated =
    List.filter
      (fun p -> not (List.exists (fun q -> dominates q p) points))
      points
  in
  List.sort (fun a b -> compare a.pt_seconds b.pt_seconds) non_dominated

let best_under_budget points =
  List.fold_left
    (fun best p ->
      if not p.pt_fits_budget then best
      else
        match best with
        | None -> Some p
        | Some b -> if p.pt_seconds < b.pt_seconds then Some p else best)
    None points
