module Design = Db_core.Design
module Datapath = Db_sched.Datapath

type iteration = {
  forward_cycles : int;
  backward_cycles : int;
  update_cycles : int;
  iteration_cycles : int;
  iteration_seconds : float;
  samples_per_second : float;
}

let div_ceil a b = (a + b - 1) / b

let iteration ?(dram = Db_mem.Dram.zynq_ddr3) (design : Design.t) =
  let stats = Db_nn.Model_stats.compute design.Design.network in
  let dp = design.Design.datapath in
  let macs_rate = Datapath.macs_per_cycle dp in
  let forward_cycles =
    (Simulator.batch_timing ~dram ~batch:2 design).Simulator.batch_cycles / 2
  in
  (* Backward: the dX sweep and the dW sweep each revisit every forward MAC
     once; the activation-derivative pass costs one beat per activation. *)
  let backward_macs = 2 * stats.Db_nn.Model_stats.total_macs in
  let backward_aux =
    List.fold_left
      (fun acc (s : Db_nn.Model_stats.layer_stat) ->
        acc + s.Db_nn.Model_stats.other_ops)
      0 stats.Db_nn.Model_stats.per_layer
  in
  let backward_cycles =
    div_ceil backward_macs macs_rate
    + div_ceil backward_aux dp.Datapath.lanes
  in
  (* Update: read every weight, add the scaled gradient, write it back. *)
  let bytes_per_word = (dp.Datapath.fmt.Db_fixed.Fixed.total_bits + 7) / 8 in
  let update_cycles =
    Db_mem.Dram.transfer_cycles dram
      ~bytes:(2 * stats.Db_nn.Model_stats.total_weight_bytes)
      ~sequential_fraction:1.0
    + div_ceil
        (stats.Db_nn.Model_stats.total_weight_bytes / bytes_per_word)
        macs_rate
  in
  let iteration_cycles = forward_cycles + backward_cycles + update_cycles in
  let timing_model =
    Db_fpga.Timing.at_mhz design.Design.constraints.Db_core.Constraints.clock_mhz
  in
  let iteration_seconds =
    Db_fpga.Timing.cycles_to_seconds timing_model iteration_cycles
  in
  {
    forward_cycles;
    backward_cycles;
    update_cycles;
    iteration_cycles;
    iteration_seconds;
    samples_per_second = 1.0 /. iteration_seconds;
  }

