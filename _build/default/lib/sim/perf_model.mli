(** Per-fold cycle accounting.

    The data-driven architecture overlaps the main AGU's DRAM traffic with
    the datapath's compute (double buffering), so a fold costs
    [max(compute, memory) + reconfiguration overhead].  Compute is bounded
    by three rates: the MAC lanes, the feature-buffer port and the
    weight-buffer port. *)

type fold_cycles = {
  fc_event : string;
  compute_cycles : int;
  memory_cycles : int;
  fold_cycles : int;  (** max of the two plus overhead *)
  dram_bytes : int;
}

val reconfiguration_overhead_cycles : int
(** Coordinator beats to rewire producers/consumers between folds. *)

val fold_cost :
  Db_sched.Datapath.t ->
  dram:Db_mem.Dram.t ->
  bytes_per_word:int ->
  Db_core.Compiler.fold_program ->
  fold_cycles

val pipeline_fill_cycles : Db_sched.Datapath.t -> int
(** Lane pipeline depth paid once per fold. *)
