(** Training-throughput model.

    The paper's "Why FPGA?" argument is that the generated accelerators
    are fast and power-efficient enough to accelerate the tedious
    train-and-select loop, whose cost is dominated by repeated forward and
    backward propagation.  This module prices one SGD iteration on a
    generated design:

    - forward: the simulator's pipelined steady-state cost;
    - backward: two MAC sweeps per weighted layer (dX and dW), executed on
      the same lanes with the same folding, plus the activation-derivative
      pass on the auxiliary units;
    - update: one read-modify-write sweep over the weights, bounded by
      DRAM bandwidth.

    Like the rest of the performance model this is timing-only; training
    numerics stay in float on the host (the paper trains off-board too —
    the accelerator's contribution is the propagation throughput). *)

type iteration = {
  forward_cycles : int;
  backward_cycles : int;
  update_cycles : int;
  iteration_cycles : int;
  iteration_seconds : float;
  samples_per_second : float;
}

val iteration : ?dram:Db_mem.Dram.t -> Db_core.Design.t -> iteration
(** One sample's forward + backward + update on the accelerator. *)

