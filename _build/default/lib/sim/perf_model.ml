module Datapath = Db_sched.Datapath
module Folding = Db_sched.Folding
module Compiler = Db_core.Compiler

type fold_cycles = {
  fc_event : string;
  compute_cycles : int;
  memory_cycles : int;
  fold_cycles : int;
  dram_bytes : int;
}

let reconfiguration_overhead_cycles = 4

let div_ceil a b = (a + b - 1) / b

let pipeline_fill_cycles dp =
  (* multiplier + adder tree + activation + crossbar *)
  5
  + (if dp.Datapath.simd <= 1 then 0
     else
       int_of_float
         (Float.ceil (log (float_of_int dp.Datapath.simd) /. log 2.0)))

let fold_cost dp ~dram ~bytes_per_word (p : Compiler.fold_program) =
  let fold = p.Compiler.fold in
  let macs_rate = Datapath.macs_per_cycle dp in
  let mac_cycles = div_ceil fold.Folding.macs macs_rate in
  let op_cycles = div_ceil fold.Folding.other_ops dp.Datapath.lanes in
  let feature_feed =
    div_ceil p.Compiler.buffer_feature_reads dp.Datapath.port_words
  in
  let weight_feed =
    div_ceil p.Compiler.buffer_weight_reads dp.Datapath.port_words
  in
  let compute_cycles =
    List.fold_left Stdlib.max 0 [ mac_cycles + op_cycles; feature_feed; weight_feed ]
    + pipeline_fill_cycles dp
  in
  let memory_cycles, dram_bytes =
    List.fold_left
      (fun (cyc, bytes) (tr : Compiler.transfer) ->
        let b = tr.Compiler.words * bytes_per_word in
        ( cyc
          + Db_mem.Dram.transfer_cycles dram ~bytes:b
              ~sequential_fraction:tr.Compiler.seq_fraction,
          bytes + b ))
      (0, 0) p.Compiler.transfers
  in
  {
    fc_event = p.Compiler.event;
    compute_cycles;
    memory_cycles;
    fold_cycles =
      Stdlib.max compute_cycles memory_cycles + reconfiguration_overhead_cycles;
    dram_bytes;
  }
