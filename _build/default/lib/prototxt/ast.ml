type value =
  | Int of int
  | Float of float
  | String of string
  | Enum of string
  | Bool of bool

type field =
  | Scalar of string * value
  | Message of string * field list

type document = field list

let equal_value a b =
  match a, b with
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | Enum x, Enum y -> String.equal x y
  | Bool x, Bool y -> x = y
  | (Int _ | Float _ | String _ | Enum _ | Bool _), _ -> false

let rec equal_field a b =
  match a, b with
  | Scalar (na, va), Scalar (nb, vb) -> String.equal na nb && equal_value va vb
  | Message (na, fa), Message (nb, fb) ->
      String.equal na nb && equal_document fa fb
  | (Scalar _ | Message _), _ -> false

and equal_document a b =
  List.length a = List.length b && List.for_all2 equal_field a b

let messages doc name =
  List.filter_map
    (function
      | Message (n, fields) when String.equal n name -> Some fields
      | Message _ | Scalar _ -> None)
    doc

let value_kind = function
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | Enum _ -> "enum"
  | Bool _ -> "bool"

let lookup fields name =
  List.find_map
    (function
      | Scalar (n, v) when String.equal n name -> Some (`Scalar v)
      | Message (n, f) when String.equal n name -> Some (`Message f)
      | Scalar _ | Message _ -> None)
    fields

let type_error name expected got =
  Db_util.Error.failf_at ~component:"prototxt"
    "field %s: expected %s, got %s" name expected got

let missing name =
  Db_util.Error.failf_at ~component:"prototxt" "missing required field %s" name

let opt_int fields name =
  match lookup fields name with
  | None -> None
  | Some (`Scalar (Int i)) -> Some i
  | Some (`Scalar v) -> type_error name "int" (value_kind v)
  | Some (`Message _) -> type_error name "int" "message"

let find_int fields name =
  match opt_int fields name with Some i -> i | None -> missing name

let opt_float fields name =
  match lookup fields name with
  | None -> None
  | Some (`Scalar (Float f)) -> Some f
  | Some (`Scalar (Int i)) -> Some (float_of_int i)
  | Some (`Scalar v) -> type_error name "float" (value_kind v)
  | Some (`Message _) -> type_error name "float" "message"

let find_float fields name =
  match opt_float fields name with Some f -> f | None -> missing name

let opt_string fields name =
  match lookup fields name with
  | None -> None
  | Some (`Scalar (String s)) -> Some s
  | Some (`Scalar v) -> type_error name "string" (value_kind v)
  | Some (`Message _) -> type_error name "string" "message"

let find_string fields name =
  match opt_string fields name with Some s -> s | None -> missing name

let opt_enum fields name =
  match lookup fields name with
  | None -> None
  | Some (`Scalar (Enum e)) -> Some e
  | Some (`Scalar (String s)) -> Some s
  | Some (`Scalar (Bool b)) -> Some (string_of_bool b)
  | Some (`Scalar v) -> type_error name "enum" (value_kind v)
  | Some (`Message _) -> type_error name "enum" "message"

let find_enum fields name =
  match opt_enum fields name with Some e -> e | None -> missing name

let opt_message fields name =
  match lookup fields name with
  | None -> None
  | Some (`Message f) -> Some f
  | Some (`Scalar v) -> type_error name "message" (value_kind v)

let strings fields name =
  List.filter_map
    (function
      | Scalar (n, String s) when String.equal n name -> Some s
      | Scalar _ | Message _ -> None)
    fields

let ints fields name =
  List.filter_map
    (function
      | Scalar (n, Int i) when String.equal n name -> Some i
      | Scalar _ | Message _ -> None)
    fields
