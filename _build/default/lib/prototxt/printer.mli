(** Pretty-printer producing canonical prototxt text; [parse (print d)]
    yields a document equal to [d]. *)

val print : Ast.document -> string

val pp_document : Format.formatter -> Ast.document -> unit
