type token =
  | Ident of string
  | Number of string
  | Quoted of string
  | Lbrace
  | Rbrace
  | Colon
  | Eof

type located = { token : token; line : int; column : int }

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Number s -> Printf.sprintf "number %s" s
  | Quoted s -> Printf.sprintf "string %S" s
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Colon -> "':'"
  | Eof -> "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_number_start c = (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.'

let is_number_char c =
  (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E' || c = '-' || c = '+'

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let tokens = ref [] in
  let emit tok ~line ~column = tokens := { token = tok; line; column } :: !tokens in
  let advance c =
    if c = '\n' then begin line := !line + 1; col := 1 end
    else col := !col + 1
  in
  let rec scan i =
    if i >= n then emit Eof ~line:!line ~column:!col
    else
      let c = src.[i] in
      let tok_line = !line and tok_col = !col in
      if c = ' ' || c = '\t' || c = '\r' || c = '\n' || c = ',' then begin
        advance c; scan (i + 1)
      end
      else if c = '#' then begin
        let rec skip j =
          if j >= n || src.[j] = '\n' then j
          else begin advance src.[j]; skip (j + 1) end
        in
        scan (skip (i + 1))
      end
      else if c = '{' then begin
        emit Lbrace ~line:tok_line ~column:tok_col; advance c; scan (i + 1)
      end
      else if c = '}' then begin
        emit Rbrace ~line:tok_line ~column:tok_col; advance c; scan (i + 1)
      end
      else if c = ':' then begin
        emit Colon ~line:tok_line ~column:tok_col; advance c; scan (i + 1)
      end
      else if c = '"' then begin
        advance c;
        let buf = Buffer.create 16 in
        let rec str j =
          if j >= n then
            Db_util.Error.failf_at ~component:"prototxt"
              "unterminated string at line %d, column %d" tok_line tok_col
          else if src.[j] = '"' then begin
            advance '"';
            emit (Quoted (Buffer.contents buf)) ~line:tok_line ~column:tok_col;
            scan (j + 1)
          end
          else begin
            Buffer.add_char buf src.[j];
            advance src.[j];
            str (j + 1)
          end
        in
        str (i + 1)
      end
      else if is_number_start c then begin
        let rec num j =
          if j < n && is_number_char src.[j] then begin advance src.[j]; num (j + 1) end
          else j
        in
        advance c;
        let stop = num (i + 1) in
        emit (Number (String.sub src i (stop - i))) ~line:tok_line ~column:tok_col;
        scan stop
      end
      else if is_ident_start c then begin
        let rec ident j =
          if j < n && is_ident_char src.[j] then begin advance src.[j]; ident (j + 1) end
          else j
        in
        advance c;
        let stop = ident (i + 1) in
        emit (Ident (String.sub src i (stop - i))) ~line:tok_line ~column:tok_col;
        scan stop
      end
      else
        Db_util.Error.failf_at ~component:"prototxt"
          "illegal character %C at line %d, column %d" c tok_line tok_col
  in
  scan 0;
  List.rev !tokens
