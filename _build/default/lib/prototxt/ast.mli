(** Abstract syntax of the Caffe-compatible descriptive script (Fig. 4 of
    the paper).

    A document is a flat sequence of fields.  Fields are either scalar
    ([name: value]) or message ([name { ... }]).  DeepBurning extends Caffe
    with [connect { ... }] blocks describing inter-layer wiring
    (direction: forward / recurrent, type: full_per_channel /
    file_specified / ...). *)

type value =
  | Int of int
  | Float of float
  | String of string  (** quoted in the source *)
  | Enum of string  (** bare upper/lower-case identifier, e.g. [CONVOLUTION] *)
  | Bool of bool

type field =
  | Scalar of string * value
  | Message of string * field list

type document = field list

val equal_value : value -> value -> bool

val equal_field : field -> field -> bool

val equal_document : document -> document -> bool

(** {2 Typed accessors}

    All lookups are by field name; [find_*] raise
    {!Db_util.Error.Deepburning_error} with a readable message when the
    field is missing or has the wrong type, [opt_*] return [None] when the
    field is absent (but still fail on a type mismatch). *)

val messages : document -> string -> field list list
(** All message fields with the given name, in order. *)

val find_int : field list -> string -> int

val opt_int : field list -> string -> int option

val find_float : field list -> string -> float
(** Accepts an [Int] field and widens it. *)

val opt_float : field list -> string -> float option

val find_string : field list -> string -> string

val opt_string : field list -> string -> string option

val find_enum : field list -> string -> string

val opt_enum : field list -> string -> string option

val opt_message : field list -> string -> field list option

val strings : field list -> string -> string list
(** All values of repeated string fields with the given name (Caffe's
    repeated [bottom] / [top]). *)

val ints : field list -> string -> int list
(** All values of repeated int fields with the given name (Caffe's
    repeated [dim]). *)
