lib/prototxt/ast.mli:
