lib/prototxt/lexer.mli:
