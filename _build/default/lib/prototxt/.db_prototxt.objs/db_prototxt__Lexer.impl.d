lib/prototxt/lexer.ml: Buffer Db_util List Printf String
