lib/prototxt/printer.mli: Ast Format
