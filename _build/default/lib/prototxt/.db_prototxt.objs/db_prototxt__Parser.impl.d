lib/prototxt/parser.ml: Ast Db_util Lexer List String
