lib/prototxt/parser.mli: Ast
