lib/prototxt/printer.ml: Ast Format List Printf String
