lib/prototxt/ast.ml: Db_util List String
