(** Recursive-descent parser for prototxt documents. *)

val parse : string -> Ast.document
(** Raises {!Db_util.Error.Deepburning_error} with line/column context on a
    syntax error. *)

val parse_file : string -> Ast.document
(** Reads the file and parses it. *)
