let pp_value fmt = function
  | Ast.Int i -> Format.fprintf fmt "%d" i
  | Ast.Float f ->
      (* Keep a decimal point so the value re-parses as a float. *)
      let s = Printf.sprintf "%.17g" f in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
        Format.pp_print_string fmt s
      else Format.fprintf fmt "%s.0" s
  | Ast.String s -> Format.fprintf fmt "%S" s
  | Ast.Enum e -> Format.pp_print_string fmt e
  | Ast.Bool b -> Format.pp_print_string fmt (if b then "true" else "false")

let rec pp_field ~indent fmt field =
  let pad = String.make indent ' ' in
  match field with
  | Ast.Scalar (name, value) ->
      Format.fprintf fmt "%s%s: %a\n" pad name pp_value value
  | Ast.Message (name, fields) ->
      Format.fprintf fmt "%s%s {\n" pad name;
      List.iter (pp_field ~indent:(indent + 2) fmt) fields;
      Format.fprintf fmt "%s}\n" pad

let pp_document fmt doc = List.iter (pp_field ~indent:0 fmt) doc

let print doc = Format.asprintf "%a" pp_document doc
