(** Tokeniser for the prototxt grammar. *)

type token =
  | Ident of string
  | Number of string  (** raw spelling; the parser decides int vs float *)
  | Quoted of string  (** contents without the quotes *)
  | Lbrace
  | Rbrace
  | Colon
  | Eof

type located = { token : token; line : int; column : int }

val tokenize : string -> located list
(** Whole-input tokenisation.  Skips [#]-to-end-of-line comments and
    whitespace.  Raises {!Db_util.Error.Deepburning_error} on an illegal
    character or an unterminated string, with line/column in the message. *)

val token_to_string : token -> string
