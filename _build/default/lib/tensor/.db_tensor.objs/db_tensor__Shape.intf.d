lib/tensor/shape.mli:
