lib/tensor/ops.ml: Array Float List Shape Stdlib Tensor
