lib/tensor/tensor.ml: Array Db_util Float Format Shape Stdlib
