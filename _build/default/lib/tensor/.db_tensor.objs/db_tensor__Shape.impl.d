lib/tensor/shape.ml: Array List String
