lib/tensor/tensor.mli: Db_util Format Shape
