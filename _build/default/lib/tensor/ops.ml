type padding = { top : int; left : int; bottom : int; right : int }

let no_padding = { top = 0; left = 0; bottom = 0; right = 0 }

let symmetric_padding p =
  if p < 0 then invalid_arg "Ops.symmetric_padding: negative";
  { top = p; left = p; bottom = p; right = p }

let conv_output_dim ~input ~kernel ~stride ~pad_lo ~pad_hi =
  if stride <= 0 then invalid_arg "Ops.conv_output_dim: stride must be positive";
  let span = input + pad_lo + pad_hi - kernel in
  if span < 0 then invalid_arg "Ops.conv_output_dim: kernel larger than padded input";
  (span / stride) + 1

let conv2d ~input ~weights ~bias ~stride ~padding ~group =
  let ishape = Tensor.shape input and wshape = Tensor.shape weights in
  if Shape.rank ishape <> 3 then invalid_arg "Ops.conv2d: input must be CHW";
  if Shape.rank wshape <> 4 then invalid_arg "Ops.conv2d: weights must be OIKK";
  let cin = Shape.dim ishape 0
  and h = Shape.dim ishape 1
  and w = Shape.dim ishape 2 in
  let cout = Shape.dim wshape 0
  and cin_g = Shape.dim wshape 1
  and kh = Shape.dim wshape 2
  and kw = Shape.dim wshape 3 in
  if kh <> kw then invalid_arg "Ops.conv2d: only square kernels supported";
  if group <= 0 || cin mod group <> 0 || cout mod group <> 0 then
    invalid_arg "Ops.conv2d: bad group";
  if cin_g <> cin / group then invalid_arg "Ops.conv2d: weight channel mismatch";
  (match bias with
  | None -> ()
  | Some b ->
      if Tensor.numel b <> cout then invalid_arg "Ops.conv2d: bias length mismatch");
  let oh = conv_output_dim ~input:h ~kernel:kh ~stride ~pad_lo:padding.top ~pad_hi:padding.bottom in
  let ow = conv_output_dim ~input:w ~kernel:kw ~stride ~pad_lo:padding.left ~pad_hi:padding.right in
  let out = Tensor.create (Shape.chw ~channels:cout ~height:oh ~width:ow) in
  let idata = Tensor.data input and wdata = Tensor.data weights in
  let odata = Tensor.data out in
  let cout_g = cout / group in
  for oc = 0 to cout - 1 do
    let g = oc / cout_g in
    let base_ic = g * cin_g in
    let b = match bias with None -> 0.0 | Some bt -> Tensor.get bt oc in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref b in
        for ic = 0 to cin_g - 1 do
          for ky = 0 to kh - 1 do
            let iy = (oy * stride) + ky - padding.top in
            if iy >= 0 && iy < h then
              for kx = 0 to kw - 1 do
                let ix = (ox * stride) + kx - padding.left in
                if ix >= 0 && ix < w then begin
                  let iv = idata.(((base_ic + ic) * h * w) + (iy * w) + ix) in
                  let wv = wdata.((((oc * cin_g) + ic) * kh * kw) + (ky * kw) + kx) in
                  acc := !acc +. (iv *. wv)
                end
              done
          done
        done;
        odata.((oc * oh * ow) + (oy * ow) + ox) <- !acc
      done
    done
  done;
  out

let pool_generic ~combine ~finish ~init_value ~input ~kernel ~stride =
  let ishape = Tensor.shape input in
  if Shape.rank ishape <> 3 then invalid_arg "Ops.pool: input must be CHW";
  let c = Shape.dim ishape 0
  and h = Shape.dim ishape 1
  and w = Shape.dim ishape 2 in
  let oh = conv_output_dim ~input:h ~kernel ~stride ~pad_lo:0 ~pad_hi:0 in
  let ow = conv_output_dim ~input:w ~kernel ~stride ~pad_lo:0 ~pad_hi:0 in
  let out = Tensor.create (Shape.chw ~channels:c ~height:oh ~width:ow) in
  let idata = Tensor.data input and odata = Tensor.data out in
  for ch = 0 to c - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref init_value in
        for ky = 0 to kernel - 1 do
          for kx = 0 to kernel - 1 do
            let iy = (oy * stride) + ky and ix = (ox * stride) + kx in
            acc := combine !acc idata.((ch * h * w) + (iy * w) + ix)
          done
        done;
        odata.((ch * oh * ow) + (oy * ow) + ox) <- finish !acc
      done
    done
  done;
  out

let max_pool ~input ~kernel ~stride =
  pool_generic ~combine:Float.max ~finish:(fun x -> x) ~init_value:neg_infinity
    ~input ~kernel ~stride

let avg_pool ~input ~kernel ~stride =
  let area = float_of_int (kernel * kernel) in
  pool_generic ~combine:( +. ) ~finish:(fun x -> x /. area) ~init_value:0.0
    ~input ~kernel ~stride

let global_avg_pool ~input =
  let ishape = Tensor.shape input in
  if Shape.rank ishape <> 3 then invalid_arg "Ops.global_avg_pool: input must be CHW";
  let c = Shape.dim ishape 0
  and h = Shape.dim ishape 1
  and w = Shape.dim ishape 2 in
  let out = Tensor.create (Shape.vector c) in
  let idata = Tensor.data input in
  for ch = 0 to c - 1 do
    let acc = ref 0.0 in
    for i = 0 to (h * w) - 1 do
      acc := !acc +. idata.((ch * h * w) + i)
    done;
    Tensor.set out ch (!acc /. float_of_int (h * w))
  done;
  out

let fully_connected ~input ~weights ~bias =
  let wshape = Tensor.shape weights in
  if Shape.rank wshape <> 2 then invalid_arg "Ops.fully_connected: weights must be rank 2";
  let nout = Shape.dim wshape 0 and nin = Shape.dim wshape 1 in
  if Tensor.numel input <> nin then
    invalid_arg "Ops.fully_connected: input size mismatch";
  (match bias with
  | None -> ()
  | Some b ->
      if Tensor.numel b <> nout then
        invalid_arg "Ops.fully_connected: bias length mismatch");
  let out = Tensor.create (Shape.vector nout) in
  let idata = Tensor.data input
  and wdata = Tensor.data weights
  and odata = Tensor.data out in
  for o = 0 to nout - 1 do
    let acc = ref (match bias with None -> 0.0 | Some b -> Tensor.get b o) in
    for i = 0 to nin - 1 do
      acc := !acc +. (wdata.((o * nin) + i) *. idata.(i))
    done;
    odata.(o) <- !acc
  done;
  out

let relu t = Tensor.map (fun x -> Float.max 0.0 x) t

let sigmoid t = Tensor.map (fun x -> 1.0 /. (1.0 +. exp (-.x))) t

let tanh_act t = Tensor.map Float.tanh t

let softmax t =
  let m = Tensor.fold Float.max neg_infinity t in
  let exps = Tensor.map (fun x -> exp (x -. m)) t in
  let total = Tensor.fold ( +. ) 0.0 exps in
  Tensor.map (fun x -> x /. total) exps

let lrn ~input ~local_size ~alpha ~beta ~k =
  let ishape = Tensor.shape input in
  if Shape.rank ishape <> 3 then invalid_arg "Ops.lrn: input must be CHW";
  if local_size <= 0 || local_size mod 2 = 0 then
    invalid_arg "Ops.lrn: local_size must be odd and positive";
  let c = Shape.dim ishape 0
  and h = Shape.dim ishape 1
  and w = Shape.dim ishape 2 in
  let half = local_size / 2 in
  let out = Tensor.create ishape in
  let idata = Tensor.data input and odata = Tensor.data out in
  for ch = 0 to c - 1 do
    let lo = Stdlib.max 0 (ch - half) and hi = Stdlib.min (c - 1) (ch + half) in
    for y = 0 to h - 1 do
      for x = 0 to w - 1 do
        let sq = ref 0.0 in
        for j = lo to hi do
          let v = idata.((j * h * w) + (y * w) + x) in
          sq := !sq +. (v *. v)
        done;
        let scale = k +. (alpha /. float_of_int local_size *. !sq) in
        let v = idata.((ch * h * w) + (y * w) + x) in
        odata.((ch * h * w) + (y * w) + x) <- v /. (scale ** beta)
      done
    done
  done;
  out

let dropout_inference ~ratio t =
  if ratio < 0.0 || ratio >= 1.0 then invalid_arg "Ops.dropout_inference: bad ratio";
  Tensor.copy t

let concat_channels tensors =
  match tensors with
  | [] -> invalid_arg "Ops.concat_channels: empty list"
  | first :: _ ->
      let h = Shape.height (Tensor.shape first)
      and w = Shape.width (Tensor.shape first) in
      List.iter
        (fun t ->
          let s = Tensor.shape t in
          if Shape.rank s <> 3 || Shape.height s <> h || Shape.width s <> w then
            invalid_arg "Ops.concat_channels: spatial mismatch")
        tensors;
      let total_c = List.fold_left (fun acc t -> acc + Shape.channels (Tensor.shape t)) 0 tensors in
      let out = Tensor.create (Shape.chw ~channels:total_c ~height:h ~width:w) in
      let odata = Tensor.data out in
      let offset = ref 0 in
      List.iter
        (fun t ->
          let n = Tensor.numel t in
          Array.blit (Tensor.data t) 0 odata !offset n;
          offset := !offset + n)
        tensors;
      out

let flatten t = Tensor.reshape t (Shape.vector (Tensor.numel t))
