(** Tensor shapes.

    A shape is a list of strictly positive dimensions in row-major order.
    Feature maps follow the Caffe convention [channels; height; width]
    (the batch dimension is handled one sample at a time throughout the
    repository, matching the paper's single-image forward propagation). *)

type t
(** Immutable shape. *)

val of_list : int list -> t
(** Raises [Invalid_argument] if any dimension is not positive. *)

val to_list : t -> int list

val scalar : t
(** The zero-dimensional shape with one element. *)

val vector : int -> t
(** [vector n] is the shape [\[n\]]. *)

val chw : channels:int -> height:int -> width:int -> t
(** Feature-map shape [\[channels; height; width\]]. *)

val rank : t -> int

val dim : t -> int -> int
(** [dim t i] is the [i]-th dimension.  Raises [Invalid_argument] if out of
    range. *)

val numel : t -> int
(** Product of all dimensions (1 for {!scalar}). *)

val equal : t -> t -> bool

val to_string : t -> string
(** e.g. ["3x224x224"]. *)

val channels : t -> int
(** First dimension of a rank-3 shape; 1 for rank 1 and 2. *)

val height : t -> int
(** Second-to-last dimension; 1 for rank 1. *)

val width : t -> int
(** Last dimension. *)
