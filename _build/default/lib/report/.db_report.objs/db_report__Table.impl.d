lib/report/table.ml: List Printf Stdlib String
