lib/report/experiments.mli: Db_core Db_fpga Db_nn Db_workloads
