lib/report/table.mli:
