lib/report/report_writer.mli: Experiments
