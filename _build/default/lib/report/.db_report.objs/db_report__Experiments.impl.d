lib/report/experiments.ml: Array Db_baseline Db_blocks Db_core Db_fixed Db_fpga Db_nn Db_sim Db_tensor Db_util Db_workloads Float List Printf Stdlib String Table
