lib/report/report_writer.ml: Buffer Experiments List Printf
