let render ~headers ~rows =
  let all = headers :: rows in
  let cols = List.length headers in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> Stdlib.max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let pad cell w = cell ^ String.make (w - String.length cell) ' ' in
  let line row =
    String.concat "  " (List.mapi (fun c cell -> pad cell (List.nth widths c)) row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (line headers :: sep :: List.map line rows) ^ "\n"

let ms seconds =
  let v = seconds *. 1e3 in
  if v < 0.01 then Printf.sprintf "%.4f ms" v
  else if v < 1.0 then Printf.sprintf "%.3f ms" v
  else if v < 100.0 then Printf.sprintf "%.2f ms" v
  else Printf.sprintf "%.1f ms" v

let joules j =
  if j < 1e-4 then Printf.sprintf "%.1f uJ" (j *. 1e6)
  else if j < 0.1 then Printf.sprintf "%.2f mJ" (j *. 1e3)
  else Printf.sprintf "%.3f J" j

let percent p = Printf.sprintf "%.1f%%" p

let ratio r =
  if r >= 10.0 then Printf.sprintf "%.0fx" r else Printf.sprintf "%.1fx" r
