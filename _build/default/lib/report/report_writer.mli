(** One-call markdown report: every table and figure of the evaluation,
    rendered into a single document (the generated counterpart of
    EXPERIMENTS.md, with whatever configuration the caller picks). *)

val markdown : Experiments.run_config -> string
(** Runs table 1/2, fig 8/9/10, table 3, the summary, the training and
    throughput extensions and the ablations, and renders them as markdown
    sections with fenced tables.  This re-runs the experiments (about a
    minute for the full configuration, seconds for
    {!Experiments.quick_config}). *)

val write : path:string -> Experiments.run_config -> unit
