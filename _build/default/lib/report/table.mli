(** Plain-text table rendering for the experiment harness. *)

val render : headers:string list -> rows:string list list -> string
(** Column-aligned ASCII table with a separator under the header. *)

val ms : float -> string
(** Seconds rendered as milliseconds with sensible precision. *)

val joules : float -> string

val percent : float -> string

val ratio : float -> string
(** e.g. ["4.7x"]. *)
