module Resource = Db_fpga.Resource
module Device = Db_fpga.Device

type t = {
  device : Device.t;
  budget : Resource.t;
  clock_mhz : float;
  fmt : Db_fixed.Fixed.format;
  lut_entries : int;
}

let fail fmt = Db_util.Error.failf_at ~component:"constraints" fmt

let make ?(clock_mhz = 100.0) ?(fmt = Db_fixed.Fixed.q16_8) ?(lut_entries = 256)
    ~device ~budget () =
  if not (Resource.fits budget ~within:device.Device.capacity) then
    fail "budget %a exceeds device %s capacity %a" Resource.pp budget
      device.Device.device_name Resource.pp device.Device.capacity;
  { device; budget; clock_mhz; fmt; lut_entries }

let of_fraction ~device ~fraction =
  if fraction <= 0.0 || fraction > 1.0 then
    fail "fraction %g out of (0, 1]" fraction;
  make ~device ~budget:(Resource.fraction fraction device.Device.capacity) ()

let db_medium = of_fraction ~device:Device.zynq_7045 ~fraction:0.25

let db_large = of_fraction ~device:Device.zynq_7045 ~fraction:0.85

let db_small = of_fraction ~device:Device.zynq_7020 ~fraction:0.5

let with_dsp_cap t cap =
  if cap <= 0 then fail "DSP cap must be positive";
  { t with budget = { t.budget with Resource.dsps = Stdlib.min cap t.budget.Resource.dsps } }

let parse src =
  let doc = Db_prototxt.Parser.parse src in
  match Db_prototxt.Ast.messages doc "constraint" with
  | [] -> fail "no constraint { ... } block found"
  | fields :: _ ->
      let module Ast = Db_prototxt.Ast in
      let device =
        match Ast.opt_string fields "device" with
        | None -> Device.zynq_7045
        | Some name -> (
            try Device.find name
            with Not_found -> fail "unknown device %S" name)
      in
      let cap = device.Device.capacity in
      let budget =
        Resource.make
          ~luts:(Option.value ~default:cap.Resource.luts (Ast.opt_int fields "luts"))
          ~ffs:(Option.value ~default:cap.Resource.ffs (Ast.opt_int fields "ffs"))
          ~dsps:(Option.value ~default:cap.Resource.dsps (Ast.opt_int fields "dsps"))
          ~bram_bits:
            (match Ast.opt_int fields "bram_kb" with
            | Some kb -> kb * 1024 * 8
            | None -> cap.Resource.bram_bits)
          ()
      in
      let total_bits = Option.value ~default:16 (Ast.opt_int fields "word_bits") in
      let frac_bits = Option.value ~default:8 (Ast.opt_int fields "frac_bits") in
      make
        ~clock_mhz:(Option.value ~default:100.0 (Ast.opt_float fields "clock_mhz"))
        ~fmt:(Db_fixed.Fixed.format ~total_bits ~frac_bits)
        ~lut_entries:(Option.value ~default:256 (Ast.opt_int fields "lut_entries"))
        ~device ~budget ()
