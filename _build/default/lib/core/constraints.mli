(** The user-specified overhead constraint (Fig. 3: "Design constraint
    script").

    A constraint names the target device and caps the resources NN-Gen may
    spend.  The paper's three evaluation points are presets here: [DB] is a
    medium budget on the Zynq-7045, [DB-L] a high budget on the same
    device, [DB-S] a low budget on the Zynq-7020. *)

type t = {
  device : Db_fpga.Device.t;
  budget : Db_fpga.Resource.t;
  clock_mhz : float;
  fmt : Db_fixed.Fixed.format;
  lut_entries : int;  (** Approx LUT size the compiler should emit *)
}

val make :
  ?clock_mhz:float ->
  ?fmt:Db_fixed.Fixed.format ->
  ?lut_entries:int ->
  device:Db_fpga.Device.t ->
  budget:Db_fpga.Resource.t ->
  unit ->
  t
(** Defaults: 100 MHz, Q16.8, 256 LUT entries.  Fails if the budget
    exceeds the device capacity. *)

val of_fraction : device:Db_fpga.Device.t -> fraction:float -> t
(** Budget = the given fraction of the device's capacity. *)

val db_medium : t
(** The paper's [DB] point: medium budget on Zynq-7045. *)

val db_large : t
(** [DB-L]: high budget on Zynq-7045. *)

val db_small : t
(** [DB-S]: low budget on Zynq-7020. *)

val with_dsp_cap : t -> int -> t
(** Tighten the DSP budget (the per-application constraint files in the
    evaluation mostly differ in how many MAC lanes they allow). *)

val parse : string -> t
(** Reads a constraint script such as
    {v
    constraint {
      device: "zynq-7045"
      dsps: 9
      luts: 30000
      ffs: 20000
      bram_kb: 512
      clock_mhz: 100
      word_bits: 16
      frac_bits: 8
      lut_entries: 256
    }
    v}
    Missing resource fields default to the whole device. *)
