lib/core/compiler.ml: Db_blocks Db_mem Db_nn Db_sched Db_tensor Db_util Hashtbl List Option Printf Stdlib
