lib/core/block_set.ml: Db_blocks Db_fpga Db_mem Db_nn Db_sched Db_tensor Float Format List Printf Stdlib String
