lib/core/constraints.mli: Db_fixed Db_fpga
