lib/core/constraints.ml: Db_fixed Db_fpga Db_prototxt Db_util Option Stdlib
