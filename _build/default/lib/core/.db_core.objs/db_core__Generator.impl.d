lib/core/generator.ml: Block_set Compiler Config_search Constraints Db_blocks Db_fixed Db_hdl Db_nn Db_sched Design Hashtbl List Option Printf String
