lib/core/design.ml: Block_set Compiler Constraints Db_blocks Db_fpga Db_hdl Db_mem Db_nn Db_sched Format List String
