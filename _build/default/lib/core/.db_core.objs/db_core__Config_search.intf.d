lib/core/config_search.mli: Block_set Constraints Db_mem Db_nn Db_sched
