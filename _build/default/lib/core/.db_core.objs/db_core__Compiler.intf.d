lib/core/compiler.mli: Db_blocks Db_hdl Db_mem Db_nn Db_sched
