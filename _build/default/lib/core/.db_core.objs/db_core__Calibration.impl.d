lib/core/calibration.ml: Constraints Db_fixed Db_nn Db_tensor Db_util Float List Stdlib
