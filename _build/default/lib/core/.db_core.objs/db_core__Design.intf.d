lib/core/design.mli: Block_set Compiler Constraints Db_fpga Db_hdl Db_mem Db_nn Db_sched Format
