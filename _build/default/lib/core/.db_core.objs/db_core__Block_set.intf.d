lib/core/block_set.mli: Db_blocks Db_fpga Db_mem Db_nn Db_sched Format
