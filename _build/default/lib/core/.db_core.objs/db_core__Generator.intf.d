lib/core/generator.mli: Block_set Compiler Constraints Db_hdl Db_nn Db_sched Design
