lib/core/config_search.ml: Block_set Constraints Db_fixed Db_fpga Db_mem Db_nn Db_sched Db_tensor Db_util Stdlib
