lib/core/calibration.mli: Constraints Db_fixed Db_nn Db_tensor
