module Rtl = Db_hdl.Rtl
module Block = Db_blocks.Block
module Datapath = Db_sched.Datapath

(* One RTL module serves every block instance with the same configuration;
   the canonical name encodes the configuration. *)
let canonical_module_name (b : Block.t) =
  match b.Block.kind with
  | Block.Synergy_neuron { simd } -> Printf.sprintf "synergy_neuron_s%d" simd
  | Block.Accumulator { depth } -> Printf.sprintf "accumulator_d%d" depth
  | Block.Pooling_unit { window; pool } ->
      Printf.sprintf "pooling_unit_w%d_%s" window
        (match pool with Block.Max_pool -> "max" | Block.Avg_pool -> "avg")
  | Block.Activation_unit { lut } ->
      "activation_unit_" ^ lut.Db_blocks.Approx_lut.lut_name
  | Block.Lrn_unit { local_size; _ } -> Printf.sprintf "lrn_unit_n%d" local_size
  | Block.Dropout_unit -> "dropout_unit"
  | Block.Connection_box { in_ports; out_ports; shift_latch } ->
      Printf.sprintf "connection_box_%dx%d%s" in_ports out_ports
        (if shift_latch then "_sl" else "")
  | Block.Classifier_ksorter { k; fan_in } ->
      Printf.sprintf "ksorter_k%d_n%d" k fan_in
  | Block.Agu { agu_kind; pattern_count; addr_bits } ->
      Printf.sprintf "%s_p%d_a%d"
        (match agu_kind with
        | Block.Main_agu -> "main_agu"
        | Block.Data_agu -> "data_agu"
        | Block.Weight_agu -> "weight_agu")
        pattern_count addr_bits
  | Block.Coordinator { n_states; _ } -> Printf.sprintf "coordinator_%d" n_states
  | Block.Feature_buffer { words; port_words } ->
      Printf.sprintf "feature_buffer_%dx%d" words port_words
  | Block.Weight_buffer { words; port_words } ->
      Printf.sprintf "weight_buffer_%dx%d" words port_words

let net name width = { Rtl.net_name = name; net_width = width }

(* Connect every declared port of [decl]; control ports go to shared nets,
   data ports to the given bus expressions. *)
let connections_for (decl : Rtl.module_decl) ~bus_of =
  List.map
    (fun (p : Rtl.port) ->
      let actual =
        match p.Rtl.port_name with
        | "clk" -> "clk"
        | "rst" -> "rst"
        | other -> bus_of other p.Rtl.width
      in
      (p.Rtl.port_name, actual))
    decl.Rtl.ports

let build_rtl network datapath ~block_set ~program =
  let dp_w = datapath.Datapath.fmt.Db_fixed.Fixed.total_bits in
  let lanes = datapath.Datapath.lanes in
  let simd = datapath.Datapath.simd in
  (* Deduplicated leaf modules. *)
  let module_table = Hashtbl.create 32 in
  let leaf_modules = ref [] in
  let ensure_module (b : Block.t) =
    let name = canonical_module_name b in
    if not (Hashtbl.mem module_table name) then begin
      Hashtbl.add module_table name ();
      leaf_modules := Block.to_module { b with Block.block_name = name } :: !leaf_modules
    end;
    name
  in
  (* ROM modules for the compiler-filled LUTs. *)
  let rom_modules =
    List.map
      (fun lut -> Db_blocks.Approx_lut.to_module lut ~fmt:datapath.Datapath.fmt)
      program.Compiler.luts
  in
  (* A bounded selection of AGU pattern FSMs lowered to RTL (the rest share
     the same shapes by construction). *)
  let pattern_fsms =
    let all = Compiler.agu_pattern_fsms program in
    List.filteri (fun i _ -> i < 48) all
  in
  let fsm_modules =
    List.map (fun fsm -> Db_hdl.Fsm.to_module fsm ~clock:"clk" ~reset:"rst") pattern_fsms
  in
  (* Top-level nets. *)
  let nets = ref [] in
  let declare name width =
    if not (List.exists (fun (n : Rtl.net) -> n.Rtl.net_name = name) !nets) then
      nets := net name width :: !nets
  in
  declare "feature_bus" (lanes * simd * dp_w);
  declare "weight_bus" (lanes * simd * dp_w);
  declare "partial_bus" (lanes * dp_w);
  declare "xbar_bus" (lanes * dp_w);
  declare "post_act_bus" (lanes * dp_w);
  declare "fold_done" 1;
  declare "lane_clear" 1;
  declare "lane_valid" 1;
  let instances = ref [] in
  let add_instance inst = instances := inst :: !instances in
  let lane_index name =
    (* "neuron_12" -> 12 *)
    match String.rindex_opt name '_' with
    | Some i -> int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1))
    | None -> None
  in
  let slice bus ~index ~width = Printf.sprintf "%s[%d:%d]" bus (((index + 1) * width) - 1) (index * width) in
  List.iter
    (fun (b : Block.t) ->
      let mod_ref = ensure_module b in
      let decl = Block.to_module { b with Block.block_name = mod_ref } in
      let idx = Option.value ~default:0 (lane_index b.Block.block_name) in
      let bus_of port_name width =
        match port_name with
        | "feature" -> slice "feature_bus" ~index:idx ~width
        | "weight" -> slice "weight_bus" ~index:idx ~width
        | "partial_sum" | "value" when width = dp_w ->
            slice "partial_bus" ~index:idx ~width
        | "total" | "result" -> slice "xbar_bus" ~index:idx ~width
        | "x" -> slice "xbar_bus" ~index:0 ~width
        | "y" -> slice "post_act_bus" ~index:0 ~width
        | "in_bus" -> "partial_bus"
        | "out_bus" -> "xbar_bus"
        | "clear" -> "lane_clear"
        | "valid_in" -> "lane_valid"
        | "fold_done" -> "fold_done"
        | other ->
            (* Dedicated net per remaining port of this instance. *)
            let n = Printf.sprintf "%s_%s" b.Block.block_name other in
            declare n width;
            n
      in
      add_instance
        {
          Rtl.inst_name = b.Block.block_name;
          module_ref = mod_ref;
          parameters = [];
          connections = connections_for decl ~bus_of;
        })
    block_set.Block_set.blocks;
  (* Instantiate the lowered AGU pattern FSMs with per-instance nets. *)
  List.iter
    (fun (m : Rtl.module_decl) ->
      let bus_of port width =
        let n = Printf.sprintf "%s_%s" m.Rtl.mod_name port in
        declare n width;
        n
      in
      add_instance
        {
          Rtl.inst_name = "i_" ^ m.Rtl.mod_name;
          module_ref = m.Rtl.mod_name;
          parameters = [];
          connections = connections_for m ~bus_of;
        })
    fsm_modules;
  let top_name =
    "accelerator_"
    ^ String.map
        (fun c -> if c = '-' || c = ' ' then '_' else c)
        network.Db_nn.Network.net_name
  in
  let top =
    {
      Rtl.mod_name = top_name;
      ports =
        [
          { Rtl.port_name = "clk"; direction = Rtl.Input; width = 1 };
          { Rtl.port_name = "rst"; direction = Rtl.Input; width = 1 };
          { Rtl.port_name = "start"; direction = Rtl.Input; width = 1 };
          { Rtl.port_name = "m_axi_araddr"; direction = Rtl.Output; width = 32 };
          { Rtl.port_name = "m_axi_rdata"; direction = Rtl.Input; width = 64 };
          { Rtl.port_name = "m_axi_awaddr"; direction = Rtl.Output; width = 32 };
          { Rtl.port_name = "m_axi_wdata"; direction = Rtl.Output; width = 64 };
          { Rtl.port_name = "done"; direction = Rtl.Output; width = 1 };
        ];
      localparams =
        [ ("LANES", lanes); ("SIMD", simd); ("WORD_BITS", dp_w) ];
      body =
        Rtl.Structural
          {
            nets = List.rev !nets;
            instances = List.rev !instances;
            assigns = [ ("done", "fold_done") ];
          };
    }
  in
  let design =
    {
      Rtl.top = top_name;
      modules = List.rev !leaf_modules @ rom_modules @ fsm_modules @ [ top ];
    }
  in
  Rtl.validate design;
  design

let assemble ?tiling_enabled cons network (picked : Config_search.result) =
  let program =
    Compiler.compile ?tiling_enabled network ~datapath:picked.Config_search.datapath
      ~schedule:picked.Config_search.schedule ~layout:picked.Config_search.layout
  in
  let rtl =
    build_rtl network picked.Config_search.datapath
      ~block_set:picked.Config_search.block_set ~program
  in
  {
    Design.network;
    constraints = cons;
    datapath = picked.Config_search.datapath;
    schedule = picked.Config_search.schedule;
    layout = picked.Config_search.layout;
    block_set = picked.Config_search.block_set;
    program;
    rtl;
  }

let generate ?tiling_enabled cons network =
  assemble ?tiling_enabled cons network (Config_search.search cons network)

let generate_with_lanes ?tiling_enabled cons network ~lanes =
  assemble ?tiling_enabled cons network (Config_search.evaluate cons network ~lanes)

let generate_from_script ?tiling_enabled ~model ~constraint_script () =
  let network = Db_nn.Caffe.import_string model in
  let cons = Constraints.parse constraint_script in
  generate ?tiling_enabled cons network
