lib/fixed/fixed.ml: Array Db_tensor Float Format Stdlib
