lib/fixed/fixed.mli: Db_tensor Format
