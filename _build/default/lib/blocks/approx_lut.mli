(** Approximate Look-Up Table (Section 3.3).

    A complex function (sigmoid, tanh, reciprocal, exp, x^beta, ...) is
    approximated by a table of sampled points; inputs that miss the table
    are served by interpolating between the two adjacent keys ("super-
    linear interpolation" in the paper).  The table's size and contents
    are produced by the NN-Gen compiler; the hardware is a BRAM plus one
    multiplier's worth of interpolation logic. *)

type t = {
  lut_name : string;
  lo : float;  (** lowest sampled input *)
  hi : float;  (** highest sampled input *)
  keys : float array;  (** uniformly spaced, [entries] of them *)
  values : float array;
}

val build : name:string -> f:(float -> float) -> lo:float -> hi:float -> entries:int -> t
(** Samples [f] at [entries] uniform points over [lo, hi].  Requires
    [entries >= 2] and [lo < hi]. *)

val eval : t -> float -> float
(** Clamp to [lo, hi], then interpolate between the adjacent samples.
    An input exactly on a key reads the stored value. *)

val entries : t -> int

val max_error : t -> f:(float -> float) -> probes:int -> float
(** Maximum absolute deviation from [f] over a dense uniform probe grid. *)

val mean_error : t -> f:(float -> float) -> probes:int -> float

val resource : t -> word_bits:int -> Db_fpga.Resource.t
(** BRAM bits for the table plus interpolation logic. *)

val to_module : t -> fmt:Db_fixed.Fixed.format -> Db_hdl.Rtl.module_decl
(** Behavioural Verilog: a ROM initialised with the quantised samples and
    the interpolation datapath. *)

(** {2 Stock functions} *)

val sigmoid : entries:int -> t

val tanh_lut : entries:int -> t

val reciprocal : entries:int -> t
(** Tabulated over the binade [1, 2); consumers range-reduce the input by
    a power of two (see {!Db_sim.Lut_eval}), which is a shift plus a
    leading-zero count in hardware. *)

val exp_lut : entries:int -> t
(** exp over [-16, 0] (softmax uses shifted exponents). *)
