lib/blocks/block.ml: Approx_lut Db_fixed Db_fpga Db_util Float Format Stdlib Templates
