lib/blocks/approx_lut.ml: Array Db_fixed Db_fpga Db_hdl Db_util Float List Printf Stdlib
