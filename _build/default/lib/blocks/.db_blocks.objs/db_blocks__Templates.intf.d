lib/blocks/templates.mli: Approx_lut Db_fixed Db_hdl
