lib/blocks/approx_lut.mli: Db_fixed Db_fpga Db_hdl
