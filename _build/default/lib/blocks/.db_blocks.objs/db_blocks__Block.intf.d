lib/blocks/block.mli: Approx_lut Db_fixed Db_fpga Db_hdl Format
