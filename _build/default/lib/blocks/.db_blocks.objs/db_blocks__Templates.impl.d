lib/blocks/templates.ml: Approx_lut Db_fixed Db_hdl Float List Printf Stdlib String
