type t = {
  lut_name : string;
  lo : float;
  hi : float;
  keys : float array;
  values : float array;
}

let build ~name ~f ~lo ~hi ~entries =
  if entries < 2 then invalid_arg "Approx_lut.build: need at least 2 entries";
  if lo >= hi then invalid_arg "Approx_lut.build: lo must be below hi";
  let step = (hi -. lo) /. float_of_int (entries - 1) in
  let keys = Array.init entries (fun i -> lo +. (float_of_int i *. step)) in
  { lut_name = name; lo; hi; keys; values = Array.map f keys }

let entries t = Array.length t.keys

let eval t x =
  let n = Array.length t.keys in
  let x = Float.min t.hi (Float.max t.lo x) in
  let step = (t.hi -. t.lo) /. float_of_int (n - 1) in
  let idx = int_of_float ((x -. t.lo) /. step) in
  let idx = Stdlib.min (n - 2) (Stdlib.max 0 idx) in
  let x0 = t.keys.(idx) in
  let frac = (x -. x0) /. step in
  t.values.(idx) +. (frac *. (t.values.(idx + 1) -. t.values.(idx)))

let probe_errors t ~f ~probes =
  if probes < 2 then invalid_arg "Approx_lut: need at least 2 probes";
  Array.init probes (fun i ->
      let x = t.lo +. ((t.hi -. t.lo) *. float_of_int i /. float_of_int (probes - 1)) in
      Float.abs (eval t x -. f x))

let max_error t ~f ~probes =
  Array.fold_left Float.max 0.0 (probe_errors t ~f ~probes)

let mean_error t ~f ~probes = Db_util.Stats.mean (probe_errors t ~f ~probes)

let resource t ~word_bits =
  (* Table in BRAM, one subtract + one multiply + one add of interpolation
     logic in LUTs (kept out of the DSP column so the paper's DSP counts
     reflect the MAC lanes alone). *)
  Db_fpga.Resource.make
    ~luts:(40 + (word_bits * 6))
    ~ffs:(2 * word_bits)
    ~bram_bits:(entries t * word_bits)
    ()

let to_module t ~fmt =
  let word_bits = fmt.Db_fixed.Fixed.total_bits in
  let n = entries t in
  let addr_bits =
    Stdlib.max 1 (int_of_float (Float.ceil (log (float_of_int n) /. log 2.0)))
  in
  let lines = ref [] in
  let emit fmt_ = Printf.ksprintf (fun s -> lines := s :: !lines) fmt_ in
  emit "reg signed [%d:0] rom [0:%d];" (word_bits - 1) (n - 1);
  emit "initial begin";
  Array.iteri
    (fun i v ->
      let q = Db_fixed.Fixed.of_float fmt v in
      let masked = q land ((1 lsl word_bits) - 1) in
      emit "  rom[%d] = %d'h%x;" i word_bits masked)
    t.values;
  emit "end";
  emit "wire [%d:0] base = rom[key];" (word_bits - 1);
  emit "wire [%d:0] next = rom[key == %d ? key : key + 1];" (word_bits - 1) (n - 1);
  emit "// super-linear interpolation between adjacent keys";
  emit "wire signed [%d:0] delta = next - base;" word_bits;
  emit "assign value = base + ((delta * frac) >>> %d);" fmt.Db_fixed.Fixed.frac_bits;
  {
    Db_hdl.Rtl.mod_name = "approx_lut_" ^ t.lut_name;
    ports =
      [
        { Db_hdl.Rtl.port_name = "key"; direction = Db_hdl.Rtl.Input; width = addr_bits };
        { Db_hdl.Rtl.port_name = "frac"; direction = Db_hdl.Rtl.Input; width = word_bits };
        { Db_hdl.Rtl.port_name = "value"; direction = Db_hdl.Rtl.Output; width = word_bits };
      ];
    localparams = [ ("ENTRIES", n) ];
    body = Db_hdl.Rtl.Behavioral (List.rev !lines);
  }

let sigmoid ~entries =
  build ~name:"sigmoid" ~f:(fun x -> 1.0 /. (1.0 +. exp (-.x))) ~lo:(-8.0)
    ~hi:8.0 ~entries

let tanh_lut ~entries = build ~name:"tanh" ~f:Float.tanh ~lo:(-4.0) ~hi:4.0 ~entries

let reciprocal ~entries =
  (* Tabulated over one binade [1, 2): the evaluator range-reduces any
     positive input by a power of two (a shift in hardware), so one small
     table covers the whole dynamic range with uniform relative error. *)
  build ~name:"reciprocal" ~f:(fun x -> 1.0 /. x) ~lo:1.0 ~hi:2.0 ~entries

let exp_lut ~entries = build ~name:"exp" ~f:exp ~lo:(-16.0) ~hi:0.0 ~entries
