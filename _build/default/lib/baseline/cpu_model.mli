(** Software baseline: the paper's Xeon 2.4 GHz running the NN in
    Caffe/Matlab.

    An analytic execution model: each layer pays a framework dispatch
    overhead plus its arithmetic at an effective MAC rate that grows with
    the layer's size (small layers are overhead- and cache-miss-bound,
    large GEMMs approach the tuned-BLAS peak).  Calibrated so the
    DeepBurning-vs-CPU envelope matches the paper: a few-fold speed-up for
    the small and mid-size models, CPU competitive on AlexNet-class nets
    against a 9-lane DB accelerator, and a ~58x average energy gap from
    the 95 W active power. *)

type t = {
  cpu_name : string;
  peak_gmacs : float;  (** asymptotic effective rate, GMAC/s *)
  half_rate_macs : float;  (** layer size at which half the peak is reached *)
  min_gmacs : float;  (** floor for tiny layers *)
  layer_overhead_s : float;  (** per-layer dispatch cost *)
  invocation_overhead_s : float;  (** per-forward-pass cost *)
  active_power_w : float;
}

val xeon_2_4ghz : t

val effective_gmacs : t -> macs:int -> float

val forward_seconds : t -> Db_nn.Network.t -> float
(** One forward propagation of the whole network. *)

val forward_energy_j : t -> Db_nn.Network.t -> float

val training_iteration_seconds : t -> Db_nn.Network.t -> float
(** One SGD iteration in software: forward + ~2x backward arithmetic at
    the same effective rates, plus one pass over the parameters for the
    update. *)

val layer_seconds : t -> macs:int -> other_ops:int -> float
