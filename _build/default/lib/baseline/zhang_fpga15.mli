(** Zhang et al., "Optimizing FPGA-based accelerator design for deep
    convolutional neural networks", FPGA 2015 — reference [7].

    The paper quotes it as the customised AlexNet accelerator at 100 MHz
    that is "much faster than DB" (~20 ms) but burns more energy (~0.5 J)
    on a much larger Virtex-7 device.  Reproduced as published constants;
    no generator run is involved. *)

val alexnet_seconds : float
(** ~ 21.6 ms per forward pass. *)

val alexnet_energy_j : float
(** ~ 0.5 J per forward pass (paper's own citation). *)

val device : Db_fpga.Device.t
