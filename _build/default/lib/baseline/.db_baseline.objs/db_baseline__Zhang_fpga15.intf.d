lib/baseline/zhang_fpga15.mli: Db_fpga
