lib/baseline/custom.mli: Db_core Db_fpga Db_sim
