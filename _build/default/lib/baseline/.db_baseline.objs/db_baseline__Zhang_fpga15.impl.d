lib/baseline/zhang_fpga15.ml: Db_fpga
