lib/baseline/cpu_model.ml: Db_fpga Db_nn Float List
