lib/baseline/custom.ml: Db_core Db_fpga Db_sim
