lib/baseline/cpu_model.mli: Db_nn
