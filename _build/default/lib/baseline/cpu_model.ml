type t = {
  cpu_name : string;
  peak_gmacs : float;
  half_rate_macs : float;
  min_gmacs : float;
  layer_overhead_s : float;
  invocation_overhead_s : float;
  active_power_w : float;
}

let xeon_2_4ghz =
  {
    cpu_name = "Xeon 2.4GHz";
    peak_gmacs = 6.0;
    half_rate_macs = 1.25e6;
    min_gmacs = 0.05;
    layer_overhead_s = 3.0e-6;
    invocation_overhead_s = 10.0e-6;
    active_power_w = Db_fpga.Power.cpu_xeon_power_w;
  }

let effective_gmacs t ~macs =
  let m = float_of_int macs in
  Float.max t.min_gmacs (t.peak_gmacs *. m /. (m +. t.half_rate_macs))

let layer_seconds t ~macs ~other_ops =
  let work = macs + (other_ops / 4) in
  if work = 0 then t.layer_overhead_s
  else
    t.layer_overhead_s
    +. (float_of_int work /. (effective_gmacs t ~macs:work *. 1e9))

let forward_seconds t net =
  let stats = Db_nn.Model_stats.compute net in
  List.fold_left
    (fun acc (s : Db_nn.Model_stats.layer_stat) ->
      acc
      +. layer_seconds t ~macs:s.Db_nn.Model_stats.macs
           ~other_ops:s.Db_nn.Model_stats.other_ops)
    t.invocation_overhead_s stats.Db_nn.Model_stats.per_layer

let forward_energy_j t net = forward_seconds t net *. t.active_power_w

let training_iteration_seconds t net =
  let stats = Db_nn.Model_stats.compute net in
  let update =
    layer_seconds t ~macs:stats.Db_nn.Model_stats.total_params ~other_ops:0
  in
  (3.0 *. forward_seconds t net) +. update
