module Resource = Db_fpga.Resource

let speedup_over_generated = 1.5

let lut_ff_saving = 0.8

type result = {
  custom_seconds : float;
  custom_energy_j : float;
  custom_resources : Resource.t;
}

let of_design design (report : Db_sim.Simulator.report) =
  let used = Db_core.Design.resource_usage design in
  let custom_resources =
    {
      used with
      Resource.luts =
        int_of_float (float_of_int used.Resource.luts *. lut_ff_saving);
      ffs = int_of_float (float_of_int used.Resource.ffs *. lut_ff_saving);
    }
  in
  let custom_seconds =
    report.Db_sim.Simulator.seconds /. speedup_over_generated
  in
  let power =
    Db_fpga.Power.accelerator_power
      ~device:design.Db_core.Design.constraints.Db_core.Constraints.device
      ~used:custom_resources
      ~clock_mhz:design.Db_core.Design.constraints.Db_core.Constraints.clock_mhz
      ()
  in
  {
    custom_seconds;
    (* Same board, same managing ARM core as the generated design. *)
    custom_energy_j =
      Db_fpga.Power.energy_j power ~seconds:custom_seconds
      +. (Db_fpga.Power.arm_host_power_w *. custom_seconds);
    custom_resources;
  }
