(** The "Custom" comparison point: accelerators hand-written by an
    experienced graduate student for each application (Section 4.2).

    Modelled as the same datapath freed of the generator's generality tax:
    a hand-crafted design replaces the generic connection box and AGU
    pattern machinery with fixed wiring, which buys back a fraction of the
    cycles and of the LUT/FF cost.  The factors below reproduce the
    paper's relations (Custom mostly beats DB; DB consumes somewhat more
    resources than CU in Table 3). *)

val speedup_over_generated : float
(** Hand-tuned cycles = generated cycles / this factor (1.5). *)

val lut_ff_saving : float
(** CU luts/ffs = DB luts/ffs * this factor (0.8); DSP and BRAM are
    dictated by the arithmetic and stay equal. *)

type result = {
  custom_seconds : float;
  custom_energy_j : float;
  custom_resources : Db_fpga.Resource.t;
}

val of_design : Db_core.Design.t -> Db_sim.Simulator.report -> result
(** Derive the hand-written accelerator's numbers from the generated
    design evaluated on the same workload. *)
