let alexnet_seconds = 21.6e-3

let alexnet_energy_j = 0.5

let device = Db_fpga.Device.virtex7_485t
