(* Robot arm control with a CMAC network (the paper's CMAC benchmark).

   A CMAC (tile-coding associative layer + recurrent smoothing + FC head)
   learns the inverse kinematics of a 2-link planar arm; DeepBurning turns
   it into a 1-DSP accelerator (Table 3's CMAC row) and the example drives
   a circular trajectory through both the float controller and the
   accelerator, reporting end-point tracking error.

   Run with: dune exec examples/robot_arm.exe *)

module Benchmarks = Db_workloads.Benchmarks
module Datasets = Db_workloads.Datasets
module Tensor = Db_tensor.Tensor
module Shape = Db_tensor.Shape

let () =
  print_endline "CMAC robot-arm controller through DeepBurning\n";
  let bench = Benchmarks.find "CMAC" in
  print_endline "training the controller (delta rule on tile-coded features)...";
  let prepared = Benchmarks.prepare_cached bench ~seed:42 in
  let net = prepared.Benchmarks.accuracy_network in
  let cons =
    Db_core.Constraints.with_dsp_cap Db_core.Constraints.db_medium
      bench.Benchmarks.dsp_cap
  in
  let design = Db_core.Generator.generate cons net in
  Format.printf "%a@." Db_core.Design.pp_summary design;

  (* Drive a trajectory of reachable targets (drawn from the same
     task-space distribution the controller was trained on). *)
  let trajectory =
    Array.map fst (Datasets.arm_samples (Db_util.Rng.create 7) ~count:16)
  in
  let track_error controller =
    let total = ref 0.0 in
    Array.iter
      (fun target ->
        (* De-normalise the commanded target back to task space. *)
        let x = (2.0 *. Tensor.get target 0) -. 1.0 in
        let y = (2.0 *. Tensor.get target 1) -. 1.0 in
        let angles = controller target in
        let theta1 = Tensor.get angles 0 *. Float.pi in
        let theta2 = Tensor.get angles 1 *. Float.pi in
        let ax, ay = Datasets.arm_forward ~theta1 ~theta2 in
        total := !total +. sqrt (((ax -. x) ** 2.0) +. ((ay -. y) ** 2.0)))
      trajectory;
    !total /. float_of_int (Array.length trajectory)
  in
  ignore (Shape.scalar : Shape.t);
  let float_controller target =
    Db_nn.Interpreter.output net prepared.Benchmarks.params
      ~inputs:[ (prepared.Benchmarks.input_blob, target) ]
  in
  let accel_controller target =
    Db_sim.Simulator.functional_output design prepared.Benchmarks.params
      ~inputs:[ (prepared.Benchmarks.input_blob, target) ]
  in
  Printf.printf "mean end-point tracking error over a 16-target trajectory:\n";
  Printf.printf "  float controller        : %.4f (arm lengths)\n"
    (track_error float_controller);
  Printf.printf "  generated accelerator   : %.4f\n\n"
    (track_error accel_controller);

  let report = Db_sim.Simulator.timing design in
  Printf.printf
    "control-loop latency on the accelerator: %s per target (%d cycles at \
     100 MHz)\n"
    (Db_report.Table.ms report.Db_sim.Simulator.seconds)
    report.Db_sim.Simulator.total_cycles
