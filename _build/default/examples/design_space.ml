(* Design-space exploration: the reason the paper argues for FPGAs + a
   generator in the first place.  For one model, sweep the lane count and
   the three budget presets, and print the latency/resource Pareto the
   designer would choose from.

   Run with: dune exec examples/design_space.exe *)

module Experiments = Db_report.Experiments
module Benchmarks = Db_workloads.Benchmarks
module Resource = Db_fpga.Resource

let () =
  print_endline "Design-space exploration for the MNIST-class CNN\n";
  let bench = Benchmarks.find "MNIST" in

  (* Lane sweep at a roomy budget: the spatial-folding Pareto. *)
  print_endline "lane sweep (spatial folding):";
  let rows =
    List.map
      (fun lanes ->
        let design =
          Db_core.Generator.generate_with_lanes Db_core.Constraints.db_large
            bench.Benchmarks.network ~lanes
        in
        let report = Db_sim.Simulator.timing design in
        let used = Db_core.Design.resource_usage design in
        [
          string_of_int lanes;
          Db_report.Table.ms report.Db_sim.Simulator.seconds;
          string_of_int used.Resource.dsps;
          string_of_int used.Resource.luts;
          string_of_int used.Resource.ffs;
          Printf.sprintf "%.2f"
            (report.Db_sim.Simulator.effective_gmacs
            /. float_of_int (Stdlib.max 1 used.Resource.dsps));
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  print_string
    (Db_report.Table.render
       ~headers:[ "lanes"; "latency"; "DSP"; "LUT"; "FF"; "GMAC/s/DSP" ]
       ~rows);

  (* The paper's three budget points. *)
  print_endline "\nbudget presets (the paper's DB / DB-L / DB-S):";
  let preset_rows =
    List.map
      (fun (label, budget) ->
        let design = Experiments.design_for ~budget bench in
        let report = Db_sim.Simulator.timing design in
        let used = Db_core.Design.resource_usage design in
        [
          label;
          design.Db_core.Design.constraints.Db_core.Constraints.device
            .Db_fpga.Device.device_name;
          Db_report.Table.ms report.Db_sim.Simulator.seconds;
          Db_report.Table.joules report.Db_sim.Simulator.energy_j;
          string_of_int used.Resource.dsps;
          string_of_int used.Resource.luts;
        ])
      [ ("DB", `Db); ("DB-L", `Db_l); ("DB-S", `Db_s) ]
  in
  print_string
    (Db_report.Table.render
       ~headers:[ "preset"; "device"; "latency"; "energy"; "DSP"; "LUT" ]
       ~rows:preset_rows);

  (* The explorer condenses the sweep into the decision a designer makes. *)
  let points =
    Db_sim.Explorer.sweep_lanes Db_core.Constraints.db_medium
      bench.Benchmarks.network ~lanes:[ 1; 2; 4; 8; 16 ]
  in
  let frontier = Db_sim.Explorer.pareto points in
  Printf.printf "\nPareto frontier (latency vs LUTs): %s\n"
    (String.concat ", "
       (List.map
          (fun p ->
            Printf.sprintf "%d lanes (%s, %d LUTs)" p.Db_sim.Explorer.pt_lanes
              (Db_report.Table.ms p.Db_sim.Explorer.pt_seconds)
              p.Db_sim.Explorer.pt_resources.Resource.luts)
          frontier));
  (match Db_sim.Explorer.best_under_budget points with
  | Some best ->
      Printf.printf "fastest point inside the DB budget: %d lanes\n"
        best.Db_sim.Explorer.pt_lanes
  | None -> print_endline "no point fits the DB budget");

  print_endline
    "\nNN-Gen picks the widest datapath that fits each budget; the sweep\n\
     above is what a designer would otherwise have explored by hand."
