(* The image-classification flow: the paper's 5-layer MNIST CNN trained on
   synthetic digit glyphs, generated at two budget points, with accuracy
   and per-layer latency reports.

   Run with: dune exec examples/mnist_flow.exe *)

module Benchmarks = Db_workloads.Benchmarks
module Tensor = Db_tensor.Tensor

let () =
  print_endline "MNIST-class CNN through DeepBurning\n";
  let bench = Benchmarks.find "MNIST" in
  print_endline "training the CNN on synthetic digit glyphs...";
  let prepared = Benchmarks.prepare_cached bench ~seed:42 in
  let net = prepared.Benchmarks.accuracy_network in

  let evaluate name run_one =
    let outputs = Array.map run_one prepared.Benchmarks.eval_inputs in
    Printf.printf "  %-24s: %.1f%% test accuracy\n%!" name
      (Benchmarks.accuracy_percent prepared outputs)
  in
  Printf.printf "\nclassification accuracy (%d held-out glyphs):\n"
    (Array.length prepared.Benchmarks.eval_inputs);
  evaluate "float NN (CPU)" (fun input ->
      Db_nn.Interpreter.output net prepared.Benchmarks.params
        ~inputs:[ (prepared.Benchmarks.input_blob, input) ]);

  (* Generate at the paper's DB and DB-S budget points. *)
  let generate label cons =
    let design = Db_core.Generator.generate cons net in
    let report = Db_sim.Simulator.timing design in
    Printf.printf "\n--- %s ---\n" label;
    Format.printf "%a@." Db_core.Design.pp_summary design;
    Format.printf "%a@." Db_sim.Simulator.pp_report report;
    design
  in
  let db =
    generate "DB (medium budget, Zynq-7045)"
      (Db_core.Constraints.with_dsp_cap Db_core.Constraints.db_medium
         bench.Benchmarks.dsp_cap)
  in
  let _db_s =
    generate "DB-S (low budget, Zynq-7020)"
      (Db_core.Constraints.with_dsp_cap Db_core.Constraints.db_small
         (Stdlib.max 1 (bench.Benchmarks.dsp_cap / 2)))
  in
  Printf.printf "\naccelerator accuracy (fixed point + Approx LUT):\n";
  evaluate "DeepBurning (DB)" (fun input ->
      Db_sim.Simulator.functional_output db prepared.Benchmarks.params
        ~inputs:[ (prepared.Benchmarks.input_blob, input) ])
