(* Quickstart: the paper's "one-click" flow.

   A Caffe-compatible descriptive script plus a constraint script go in;
   a complete accelerator comes out — RTL, folded schedule, data layout,
   AGU programs and Approx-LUT contents — and the simulator reports what
   the board would do.

   Run with: dune exec examples/quickstart.exe *)

let model_script =
  {|
name: "quickstart-mlp"
layers { name: "data" type: INPUT top: "data" input_param { dim: 16 } }
layers { name: "fc1" type: INNER_PRODUCT bottom: "data" top: "fc1"
  inner_product_param { num_output: 32 } }
layers { name: "act1" type: SIGMOID bottom: "fc1" top: "act1" }
layers { name: "fc2" type: INNER_PRODUCT bottom: "act1" top: "fc2"
  inner_product_param { num_output: 10 } }
layers { name: "prob" type: SOFTMAX bottom: "fc2" top: "prob" }
|}

let constraint_script =
  {|
constraint {
  device: "zynq-7045"
  dsps: 4
  luts: 20000
  ffs: 10000
  bram_kb: 256
  clock_mhz: 100
  word_bits: 16
  frac_bits: 8
  lut_entries: 256
}
|}

let () =
  print_endline "DeepBurning quickstart: model + constraint -> accelerator\n";
  (* 1. One call runs the whole NN-Gen flow. *)
  let design =
    Db_core.Generator.generate_from_script ~model:model_script
      ~constraint_script ()
  in
  Format.printf "%a@." Db_core.Design.pp_summary design;

  (* 2. The hardware half: Verilog ready for synthesis. *)
  let verilog = Db_core.Design.verilog design in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "quickstart_accelerator.v" in
  let oc = open_out path in
  output_string oc verilog;
  close_out oc;
  Printf.printf "wrote %d lines of Verilog to %s\n\n"
    (List.length (String.split_on_char '\n' verilog))
    path;

  (* 3. The software half: the folded schedule and the data layout. *)
  Format.printf "%a@." Db_sched.Schedule.pp design.Db_core.Design.schedule;
  Format.printf "%a@." Db_mem.Layout.pp design.Db_core.Design.layout;

  (* 4. Simulate a forward pass: timing, traffic, power. *)
  let report = Db_sim.Simulator.timing design in
  Format.printf "%a@." Db_sim.Simulator.pp_report report;

  (* 5. And run actual data through the accelerator's arithmetic. *)
  let rng = Db_util.Rng.create 1 in
  let params = Db_nn.Params.init_xavier rng design.Db_core.Design.network in
  let input =
    Db_tensor.Tensor.random_uniform rng (Db_tensor.Shape.vector 16) ~min:0.0
      ~max:1.0
  in
  let accel_out, _ =
    Db_sim.Simulator.run design params ~inputs:[ ("data", input) ]
  in
  let float_out =
    Db_nn.Interpreter.output design.Db_core.Design.network params
      ~inputs:[ ("data", input) ]
  in
  (* 6. Emit a self-checking Verilog testbench replaying this exact run
     (what the paper verifies with Vivado). *)
  let tb = Db_sim.Simulator.testbench design params ~inputs:[ ("data", input) ] in
  let tb_path =
    Filename.concat (Filename.get_temp_dir_name ()) "quickstart_accelerator_tb.v"
  in
  let oc = open_out tb_path in
  output_string oc tb;
  close_out oc;
  Printf.printf "wrote self-checking testbench to %s\n\n" tb_path;

  Format.printf "accelerator output: %a@." Db_tensor.Tensor.pp accel_out;
  Format.printf "float reference   : %a@." Db_tensor.Tensor.pp float_out;
  Printf.printf "max deviation     : %.5f (fixed point + Approx LUT)\n"
    (Db_tensor.Tensor.fold Float.max 0.0
       (Db_tensor.Tensor.map Float.abs
          (Db_tensor.Tensor.sub accel_out float_out)))
