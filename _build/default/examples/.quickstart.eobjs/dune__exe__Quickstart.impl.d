examples/quickstart.ml: Db_core Db_mem Db_nn Db_sched Db_sim Db_tensor Db_util Filename Float Format List Printf String
