examples/design_space.ml: Db_core Db_fpga Db_report Db_sim Db_workloads List Printf Stdlib String
