examples/mnist_flow.mli:
