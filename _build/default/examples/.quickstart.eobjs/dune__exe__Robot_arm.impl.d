examples/robot_arm.ml: Array Db_core Db_nn Db_report Db_sim Db_tensor Db_util Db_workloads Float Format Printf
