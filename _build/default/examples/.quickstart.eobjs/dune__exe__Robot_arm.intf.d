examples/robot_arm.mli:
