examples/model_search.ml: Array Db_baseline Db_core Db_fpga Db_nn Db_report Db_sim Db_tensor Db_train Db_util Db_workloads Float List Printf
