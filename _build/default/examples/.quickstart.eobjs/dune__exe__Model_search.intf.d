examples/model_search.mli:
