examples/approximate_computing.ml: Array Db_baseline Db_core Db_nn Db_report Db_sim Db_tensor Db_workloads Format Printf
