examples/mnist_flow.ml: Array Db_core Db_nn Db_sim Db_tensor Db_workloads Format Printf Stdlib
