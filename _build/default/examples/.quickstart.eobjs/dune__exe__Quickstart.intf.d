examples/quickstart.mli:
