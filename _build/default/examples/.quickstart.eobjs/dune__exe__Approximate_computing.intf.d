examples/approximate_computing.mli:
