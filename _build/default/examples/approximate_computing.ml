(* Approximate computing with NN accelerators (the paper's AxBench-style
   ANN workloads, after Esmaeilzadeh et al. [1]).

   A small MLP is trained to mimic the 4x4 DCT codec kernel inside a JPEG
   round trip; DeepBurning then turns the MLP into an accelerator, and the
   example reports Eq. (1) output quality for the golden program, the float
   NN on "CPU", and the generated fixed-point accelerator.

   Run with: dune exec examples/approximate_computing.exe *)

module Benchmarks = Db_workloads.Benchmarks
module Axbench = Db_workloads.Axbench
module Tensor = Db_tensor.Tensor

let () =
  print_endline "Approximate computing: jpeg (ANN-1) through DeepBurning\n";
  let bench = Benchmarks.find "ANN-1" in
  Printf.printf "training the %s approximator...\n%!" bench.Benchmarks.application;
  let prepared = Benchmarks.prepare_cached bench ~seed:42 in
  let net = prepared.Benchmarks.accuracy_network in

  (* Golden program sanity: encode/decode one smooth block. *)
  let block = Array.init 16 (fun i -> 0.25 +. (0.03 *. float_of_int i)) in
  let decoded = Axbench.jpeg_golden block in
  Printf.printf "golden codec: pixel 0 %.3f -> %.3f (lossy but close)\n\n"
    block.(0) decoded.(0);

  (* Generate the accelerator under the paper's per-app constraint. *)
  let cons =
    Db_core.Constraints.with_dsp_cap Db_core.Constraints.db_medium
      bench.Benchmarks.dsp_cap
  in
  let design = Db_core.Generator.generate cons net in
  Format.printf "%a@." Db_core.Design.pp_summary design;

  (* Evaluate Eq. (1) accuracy of both implementations. *)
  let cpu_outputs =
    Array.map
      (fun input ->
        Db_nn.Interpreter.output net prepared.Benchmarks.params
          ~inputs:[ (prepared.Benchmarks.input_blob, input) ])
      prepared.Benchmarks.eval_inputs
  in
  let accel_outputs =
    Array.map
      (fun input ->
        Db_sim.Simulator.functional_output design prepared.Benchmarks.params
          ~inputs:[ (prepared.Benchmarks.input_blob, input) ])
      prepared.Benchmarks.eval_inputs
  in
  let cpu_acc = Benchmarks.accuracy_percent prepared cpu_outputs in
  let accel_acc = Benchmarks.accuracy_percent prepared accel_outputs in
  Printf.printf "Eq.(1) accuracy vs the golden codec:\n";
  Printf.printf "  float NN on CPU          : %.2f%%\n" cpu_acc;
  Printf.printf "  DeepBurning accelerator  : %.2f%%\n" accel_acc;
  Printf.printf "  delta                    : %+.2f%%\n\n" (accel_acc -. cpu_acc);

  (* Latency and energy vs running the NN in software. *)
  let report = Db_sim.Simulator.timing design in
  let cpu = Db_baseline.Cpu_model.xeon_2_4ghz in
  let cpu_s = Db_baseline.Cpu_model.forward_seconds cpu net in
  Printf.printf "per-invocation latency: accelerator %s vs CPU %s (%.1fx)\n"
    (Db_report.Table.ms report.Db_sim.Simulator.seconds)
    (Db_report.Table.ms cpu_s)
    (cpu_s /. report.Db_sim.Simulator.seconds);
  Printf.printf "per-invocation energy : accelerator %s vs CPU %s (%.0fx)\n"
    (Db_report.Table.joules report.Db_sim.Simulator.energy_j)
    (Db_report.Table.joules (Db_baseline.Cpu_model.forward_energy_j cpu net))
    (Db_baseline.Cpu_model.forward_energy_j cpu net
    /. report.Db_sim.Simulator.energy_j)
